// DNN-inference workload (the paper's motivating TensorFlow/Eigen case):
// a layered neural-network DAG whose per-layer parallel operators are
// implemented as Eigen-style *blocking* parallel-for regions — many small
// nodes, a few blocking forks per layer.
//
// The example builds the task synthetically (see DESIGN.md substitutions:
// InceptionV3's real 34k-node graph is proprietary-scale, the structure is
// not), sizes the thread pool, and answers the questions a deployment
// engineer would ask: how many threads keep the model deadlock-free, what
// response-time bound holds, and how does it compare to simulation.
//
// The graph itself comes from the importer library (gen/importers.h) —
// the same constructor the corpus runner uses for its "import-dnn"
// scenario, so this example and the million-set sweep exercise one code
// path.
#include <cstdio>

#include "analysis/concurrency.h"
#include "analysis/deadlock.h"
#include "analysis/global_rta.h"
#include "gen/importers.h"
#include "sim/engine.h"
#include "util/rng.h"

int main() {
  using namespace rtpool;

  util::Rng rng(2019);
  // Spec defaults ARE this example: 6 layers x 3 blocking operators over
  // 8 tiles, period 400 (see gen/importers.h).
  const gen::importers::DnnInferenceSpec spec;
  const double period = spec.period;  // inference deadline (time units)

  const model::DagTask dnn = gen::importers::import_dnn_inference(spec, rng);
  std::printf("DNN task: %zu nodes, %zu blocking regions, vol=%.1f, "
              "len=%.1f, U=%.3f\n",
              dnn.node_count(), dnn.blocking_fork_count(), dnn.volume(),
              dnn.critical_path_length(), dnn.utilization());

  // How many threads does the pool need to be provably deadlock-free, and
  // when does the analysis accept the deadline?
  std::printf("\n%-8s %-8s %-14s %-12s %-12s\n", "threads", "l̄(tau)",
              "deadlock-free", "R (Eq. 4)", "verdict");
  for (std::size_t m = 2; m <= 12; m += 2) {
    model::TaskSet ts(m);
    ts.add(dnn);
    const auto deadlock = analysis::check_deadlock_free_global(dnn, m);
    analysis::GlobalRtaOptions limited;
    limited.limited_concurrency = true;
    const auto rta = analysis::analyze_global(ts, limited);
    std::printf("%-8zu %-8ld %-14s %-12.1f %-12s\n", m,
                deadlock.concurrency_bound,
                deadlock.deadlock_free ? "yes" : "NO",
                rta.per_task[0].response_time,
                rta.schedulable ? "schedulable" : "rejected");
  }

  // Cross-check the smallest accepted pool against the simulator.
  for (std::size_t m = 2; m <= 12; ++m) {
    model::TaskSet ts(m);
    ts.add(dnn);
    analysis::GlobalRtaOptions limited;
    limited.limited_concurrency = true;
    const auto rta = analysis::analyze_global(ts, limited);
    if (!rta.schedulable) continue;
    sim::SimConfig cfg;
    cfg.policy = sim::SchedulingPolicy::kGlobal;
    cfg.horizon = period;
    const auto result = sim::simulate(ts, cfg);
    std::printf("\nsmallest analyzable pool: m=%zu  bound R=%.1f  "
                "simulated R=%.1f  min l(t)=%ld\n",
                m, rta.per_task[0].response_time, result.max_response(0),
                result.per_task[0].min_available_concurrency);
    break;
  }
  return 0;
}
