// Randomized robustness harness for the runtime guard (exec/guard.h).
//
// For each seed, generates a random NFJ task and runs it on a real thread
// pool under a seeded fault plan (WCET overruns, stalls, thrown node
// bodies, dropped notifies — exec/fault.h), across three scenarios:
//
//   safe-global   — m = b̄(τ)+1 shared-queue workers: Lemma 1 guarantees
//                   deadlock freedom, so the guard must never report a
//                   stall (injected lost wakeups must be healed, thrown
//                   bodies must degrade to failed_nodes, never terminate);
//   deadlock      — m ≤ b̄(τ) workers: the blocking chain can close. Under
//                   kReport the guard must either complete or produce a
//                   quiescence-proof StallReport that the static analysis
//                   agrees with (Lemma 1 witness exists); under
//                   kEmergencyWorker with a b̄(τ) injection cap the run
//                   must COMPLETE — injected workers restore l̄ > 0;
//   partitioned   — Algorithm 1 placement on a kPerWorker pool: Eq. (3)
//                   holds, so no deadlock report is acceptable.
//
// Elastic-runtime scenarios (exec elasticity + mode changes):
//
//   worker-death  — seeded worker_death faults on a Lemma-1-safe shared
//                   pool and on an Algorithm-1 partitioned pool: every
//                   killed worker's node must be requeued and executed
//                   EXACTLY once (per-node execution counters), the run
//                   must complete, and — partitioned, where only the
//                   respawned replacement can drain the dead slot's queue —
//                   every death must appear as a respawned WorkerRecovery.
//                   A zero-respawn-budget variant must degrade gracefully
//                   (DegradedReport), still never losing or duplicating a
//                   node;
//   worker-hang   — seeded worker_hang faults: the stale heartbeat must be
//                   diagnosed as a LIVENESS failure (WorkerRecovery with
//                   crashed=false), never as a deadlock StallReport, and
//                   the wedged node must be re-dispatched exactly once;
//   elastic       — a seeded admit/evict/resize stream through the
//                   ModeChangeController: warm-started admission verdicts
//                   must be bit-identical to cold re-analysis, and two
//                   replays of the same stream must render identical
//                   transition logs (determinism contract).
//
// Every verdict is checked; any violation prints the replay seed and the
// fault plan and exits 1. All randomness derives from --base-seed, so every
// failure is replayable.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "analysis/concurrency.h"
#include "analysis/deadlock.h"
#include "analysis/partition.h"
#include "exec/graph_executor.h"
#include "exec/mode_change.h"
#include "exec/thread_pool.h"
#include "exp/elastic_scenarios.h"
#include "gen/taskset_generator.h"
#include "model/task_set.h"
#include "util/args.h"
#include "util/rng.h"

namespace {

using namespace rtpool;

int g_failures = 0;
bool g_verbose = false;

void fail(const std::string& context, const exec::FaultPlan& plan,
          const std::string& what) {
  std::printf("FAIL [%s] %s\n      plan: %s\n", context.c_str(), what.c_str(),
              exec::describe(plan).c_str());
  ++g_failures;
}

/// Thrown-body bookkeeping must match the plan: every throw fault that ran
/// is in failed_nodes, and nothing else is.
void check_failed_nodes(const std::string& context, const exec::FaultPlan& plan,
                        const exec::ExecReport& report, bool run_complete) {
  std::set<model::NodeId> throws;
  for (const auto& [v, f] : plan.faults())
    if (f.kind == exec::FaultKind::kThrow) throws.insert(v);
  const std::set<model::NodeId> failed(report.failed_nodes.begin(),
                                       report.failed_nodes.end());
  for (model::NodeId v : failed)
    if (throws.count(v) == 0)
      fail(context, plan, "node " + std::to_string(v) + " failed without a throw fault");
  if (run_complete && failed != throws)
    fail(context, plan, "completed run lost injected throws (" +
                            std::to_string(failed.size()) + "/" +
                            std::to_string(throws.size()) + " recorded)");
  if (!throws.empty() && !failed.empty() && report.first_error.empty())
    fail(context, plan, "failed nodes recorded but first_error empty");
}

exec::FaultPlan draw_plan(const model::DagTask& task, std::uint64_t seed,
                          bool allow_stalls) {
  exec::FaultPlanParams params;
  params.p_overrun = 0.2;
  params.p_throw = 0.15;
  params.p_drop_notify = 0.3;
  params.p_stall = allow_stalls ? 0.1 : 0.0;
  params.max_stall = std::chrono::milliseconds(10);
  params.max_overrun_factor = 4.0;
  return exec::make_random_fault_plan(task, params, seed);
}

void run_safe_global(const model::DagTask& task, std::uint64_t seed) {
  const std::size_t bbar = analysis::max_affecting_forks(task);
  exec::ThreadPool pool(bbar + 1);
  exec::GraphExecutor executor(pool, task);
  exec::ExecOptions options;
  options.microseconds_per_unit = 2.0;
  options.watchdog = std::chrono::milliseconds(5000);
  options.faults = draw_plan(task, seed, /*allow_stalls=*/true);
  const exec::ExecReport report = executor.run_blocking(options);

  const std::string context = "safe-global seed=" + std::to_string(seed);
  if (!report.completed)
    fail(context, options.faults, "Lemma-1-safe run did not complete");
  if (report.stall.has_value())
    fail(context, options.faults,
         "false stall report: " + report.stall->describe());
  check_failed_nodes(context, options.faults, report, report.completed);
  if (g_verbose)
    std::printf("  [%s] ok: %zu nodes, %zu failed, %zu lost wakeups healed\n",
                context.c_str(), report.nodes_executed,
                report.failed_nodes.size(), report.lost_wakeups_recovered);
}

void run_deadlock(const model::DagTask& task, std::uint64_t seed,
                  exec::RecoveryPolicy policy) {
  const std::size_t bbar = analysis::max_affecting_forks(task);
  if (bbar < 1) return;
  const std::size_t m = bbar > 1 ? bbar : 1;
  exec::ThreadPool pool(m);
  exec::GraphExecutor executor(pool, task);
  exec::ExecOptions options;
  options.microseconds_per_unit = 2.0;
  options.watchdog = std::chrono::milliseconds(5000);
  options.recovery = policy;
  options.max_emergency_workers = bbar;  // enough to restore l̄ > 0
  // No stall faults here: a deadlock verdict must stay a deadlock verdict.
  options.faults = draw_plan(task, seed, /*allow_stalls=*/false);

  const std::string context = std::string("deadlock/") +
                              exec::to_string(policy) +
                              " seed=" + std::to_string(seed);
  const exec::ExecReport report = executor.run_blocking(options);
  if (report.stall.has_value() && !report.stall->budget_exhausted &&
      !analysis::find_lemma1_witness(task, m).has_value())
    fail(context, options.faults,
         "stall reported but Lemma 1 guarantees freedom: " +
             report.stall->describe());
  if (policy == exec::RecoveryPolicy::kEmergencyWorker && !report.completed)
    fail(context, options.faults,
         "emergency workers (cap b̄) failed to rescue the run");
  if (policy == exec::RecoveryPolicy::kReport && !report.completed &&
      !report.stall.has_value())
    fail(context, options.faults, "cancelled without a stall report");
  check_failed_nodes(context, options.faults, report, report.completed);
  if (g_verbose)
    std::printf("  [%s] %s: %zu/%zu nodes, %zu emergency\n", context.c_str(),
                report.completed ? "completed" : "stalled",
                report.nodes_executed, task.node_count(),
                report.emergency_workers);
}

#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's -Wmaybe-uninitialized cannot track std::optional's engaged flag
// through the inlined emplace/reset under -fsanitize=address and flags the
// freshly default-constructed ExecOptions::assignment.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void run_partitioned(const model::DagTask& task, std::uint64_t seed) {
  const std::size_t bbar = analysis::max_affecting_forks(task);
  const std::size_t m = bbar + 1;
  model::TaskSet ts(m);
  ts.add(task);
  const analysis::PartitionResult partition = analysis::partition_algorithm1(ts);
  if (!partition.success()) return;  // Algorithm 1 may fail; normal result
  const analysis::NodeAssignment& assignment = partition.partition->per_task[0];

  exec::ThreadPool pool(m, exec::ThreadPool::QueueMode::kPerWorker);
  exec::GraphExecutor executor(pool, task);
  exec::ExecOptions options;
  options.microseconds_per_unit = 2.0;
  options.watchdog = std::chrono::milliseconds(5000);
  options.assignment.emplace(assignment);
  options.faults = draw_plan(task, seed, /*allow_stalls=*/true);

  const std::string context = "partitioned seed=" + std::to_string(seed);
  const exec::ExecReport report = executor.run_blocking(options);
  if (!report.completed)
    fail(context, options.faults, "Lemma-3-safe partitioned run stalled");
  if (report.stall.has_value())
    fail(context, options.faults,
         "false deadlock report on an Eq. (3) placement: " +
             report.stall->describe());
  check_failed_nodes(context, options.faults, report, report.completed);
  if (g_verbose)
    std::printf("  [%s] ok: %zu nodes on %zu workers\n", context.c_str(),
                report.nodes_executed, m);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

/// Per-node execution counters: the exactly-once invariant under lethal
/// faults. Returns false (and reports) on any lost or duplicated node.
bool check_exactly_once(const std::string& context, const exec::FaultPlan& plan,
                        const std::vector<std::atomic<std::size_t>>& counts,
                        bool require_all) {
  bool ok = true;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    const std::size_t n = counts[v].load();
    if (n > 1) {
      fail(context, plan,
           "node " + std::to_string(v) + " executed " + std::to_string(n) +
               " times (duplicated)");
      ok = false;
    } else if (require_all && n == 0) {
      fail(context, plan, "node " + std::to_string(v) + " never executed (lost)");
      ok = false;
    }
  }
  return ok;
}

exec::FaultPlan draw_lethal_plan(const model::DagTask& task, std::uint64_t seed,
                                 bool deaths, bool hangs) {
  exec::FaultPlanParams params;
  params.p_worker_death = deaths ? 0.35 : 0.0;
  params.p_worker_hang = hangs ? 0.3 : 0.0;
  return exec::make_random_fault_plan(task, params, seed);
}

void run_worker_death_shared(const model::DagTask& task, std::uint64_t seed,
                             bool degraded_variant) {
  const std::size_t bbar = analysis::max_affecting_forks(task);
  exec::ThreadPool pool(bbar + 1);
  exec::GraphExecutor executor(pool, task);
  exec::ExecOptions options;
  options.microseconds_per_unit = 2.0;
  options.watchdog = std::chrono::milliseconds(5000);
  options.respawn_backoff = std::chrono::milliseconds(5);
  options.faults = draw_lethal_plan(task, seed, /*deaths=*/true, /*hangs=*/false);
  const std::size_t deaths = options.faults.count(exec::FaultKind::kWorkerDeath);
  options.max_worker_respawns = degraded_variant ? 0 : deaths + 1;

  const std::string context =
      std::string(degraded_variant ? "worker-death-degraded" : "worker-death") +
      " seed=" + std::to_string(seed);
  std::vector<std::atomic<std::size_t>> counts(task.node_count());
  const exec::ExecReport report = executor.run_blocking(
      options, [&counts](model::NodeId v) { counts[v].fetch_add(1); });

  if (!degraded_variant) {
    // Budget covers every death: the run must complete and never degrade.
    if (!report.completed)
      fail(context, options.faults,
           "run with sufficient respawn budget did not complete");
    if (report.degraded.has_value())
      fail(context, options.faults,
           "degraded despite budget: " + report.degraded->describe());
  } else {
    // Zero budget: completing on the shrunken pool and stalling are both
    // acceptable; losing or duplicating work never is.
    if (!report.completed && !report.stall.has_value() &&
        !report.degraded.has_value())
      fail(context, options.faults,
           "cancelled without a stall or degraded diagnosis");
    if (report.workers_respawned != 0)
      fail(context, options.faults, "respawned despite a zero budget");
  }
  for (const exec::WorkerRecovery& rec : report.worker_recoveries)
    if (!rec.crashed)
      fail(context, options.faults,
           "death-only plan produced a hang recovery: " + rec.describe());
  check_exactly_once(context, options.faults, counts,
                     /*require_all=*/report.completed);
  check_failed_nodes(context, options.faults, report, report.completed);
  if (g_verbose)
    std::printf("  [%s] %s: %zu deaths, %zu recoveries, %zu respawned%s\n",
                context.c_str(), report.completed ? "completed" : "degraded",
                deaths, report.worker_recoveries.size(),
                report.workers_respawned,
                report.degraded.has_value() ? " (degraded)" : "");
}

void run_worker_death_partitioned(const model::DagTask& task,
                                  std::uint64_t seed) {
  const std::size_t bbar = analysis::max_affecting_forks(task);
  const std::size_t m = bbar + 1;
  model::TaskSet ts(m);
  ts.add(task);
  const analysis::PartitionResult partition = analysis::partition_algorithm1(ts);
  if (!partition.success()) return;
  const analysis::NodeAssignment& assignment = partition.partition->per_task[0];

  exec::ThreadPool pool(m, exec::ThreadPool::QueueMode::kPerWorker);
  exec::GraphExecutor executor(pool, task);
  exec::ExecOptions options;
  options.microseconds_per_unit = 2.0;
  options.watchdog = std::chrono::milliseconds(5000);
  options.respawn_backoff = std::chrono::milliseconds(5);
  options.assignment.emplace(assignment);
  options.faults = draw_lethal_plan(task, seed, /*deaths=*/true, /*hangs=*/false);
  const std::size_t deaths = options.faults.count(exec::FaultKind::kWorkerDeath);
  options.max_worker_respawns = deaths + 1;

  const std::string context = "worker-death-part seed=" + std::to_string(seed);
  std::vector<std::atomic<std::size_t>> counts(task.node_count());
  const exec::ExecReport report = executor.run_blocking(
      options, [&counts](model::NodeId v) { counts[v].fetch_add(1); });

  if (!report.completed) {
    fail(context, options.faults, "partitioned run with deaths did not complete");
    return;
  }
  // Stealing is suppressed under the assignment, so ONLY the respawned
  // replacement can drain a dead slot's queue: completion implies every
  // death was detected, requeued and respawned.
  std::size_t crashed = 0;
  for (const exec::WorkerRecovery& rec : report.worker_recoveries) {
    if (rec.crashed) ++crashed;
    if (rec.crashed && !rec.respawned)
      fail(context, options.faults,
           "completed but death not respawned: " + rec.describe());
  }
  if (crashed != deaths)
    fail(context, options.faults,
         "completed with " + std::to_string(crashed) + "/" +
             std::to_string(deaths) + " deaths detected");
  check_exactly_once(context, options.faults, counts, /*require_all=*/true);
  if (g_verbose)
    std::printf("  [%s] ok: %zu deaths all respawned on %zu workers\n",
                context.c_str(), deaths, m);
}

void run_worker_hang(const model::DagTask& task, std::uint64_t seed) {
  const std::size_t bbar = analysis::max_affecting_forks(task);
  exec::ThreadPool pool(bbar + 1);
  exec::GraphExecutor executor(pool, task);
  exec::ExecOptions options;
  options.microseconds_per_unit = 2.0;
  options.watchdog = std::chrono::milliseconds(8000);
  options.worker_liveness = std::chrono::milliseconds(150);
  options.respawn_backoff = std::chrono::milliseconds(5);
  options.faults = draw_lethal_plan(task, seed, /*deaths=*/false, /*hangs=*/true);
  const std::size_t hangs = options.faults.count(exec::FaultKind::kWorkerHang);
  options.max_worker_respawns = hangs + 1;

  const std::string context = "worker-hang seed=" + std::to_string(seed);
  std::vector<std::atomic<std::size_t>> counts(task.node_count());
  const exec::ExecReport report = executor.run_blocking(
      options, [&counts](model::NodeId v) { counts[v].fetch_add(1); });

  // The heart of the scenario: a wedged worker is a LIVENESS failure. The
  // guard must recover it and complete — a StallReport here would be a
  // spurious deadlock diagnosis of a healthy (Lemma-1-safe) graph.
  if (!report.completed)
    fail(context, options.faults, "hung-worker run did not complete");
  if (report.stall.has_value())
    fail(context, options.faults,
         "hang misdiagnosed as deadlock: " + report.stall->describe());
  std::size_t hung = 0;
  for (const exec::WorkerRecovery& rec : report.worker_recoveries) {
    if (rec.crashed)
      fail(context, options.faults,
           "hang-only plan produced a crash recovery: " + rec.describe());
    else
      ++hung;
  }
  if (report.completed && hung != hangs)
    fail(context, options.faults,
         "completed with " + std::to_string(hung) + "/" +
             std::to_string(hangs) + " hangs detected");
  check_exactly_once(context, options.faults, counts,
                     /*require_all=*/report.completed);
  if (g_verbose)
    std::printf("  [%s] ok: %zu hangs condemned, %zu respawned\n",
                context.c_str(), hung, report.workers_respawned);
}

void run_elastic(std::uint64_t seed, std::FILE* transition_log) {
  exp::ElasticScenarioParams params;
  params.steps = 10;
  params.gen.nfj.max_branches = 3;
  params.gen.nfj.max_depth = 2;
  exec::ModeChangeConfig config;
  config.analyzer = "global-limited";
  config.cores = 4;

  const std::string context = "elastic seed=" + std::to_string(seed);
  const std::vector<exp::ElasticRequest> requests =
      exp::make_elastic_scenario(params, seed);
  const exec::FaultPlan no_plan;  // scenario carries no node faults
  const exp::ElasticReplay first =
      exp::replay_elastic(requests, config, nullptr, /*verify_cold=*/true);
  if (!first.verdicts_agree)
    fail(context, no_plan,
         "warm-started admission verdict differs from cold re-analysis");
  if (first.committed + first.rejected != requests.size())
    fail(context, no_plan, "transition log lost requests");
  for (const exec::ModeTransition& tr : first.log)
    if (tr.committed && !tr.accepted)
      fail(context, no_plan, "committed a transition the analysis rejected");

  // Determinism contract: a second replay of the same stream must render
  // an identical timing-stripped transition log.
  const exp::ElasticReplay second =
      exp::replay_elastic(requests, config, nullptr, /*verify_cold=*/false);
  if (first.log_json != second.log_json)
    fail(context, no_plan, "replayed transition logs differ (nondeterminism)");

  if (transition_log != nullptr)
    std::fputs(first.log_json.c_str(), transition_log);
  if (g_verbose)
    std::printf("  [%s] ok: %zu committed, %zu rejected, %zu warm-seeded, "
                "%zu verified cold\n",
                context.c_str(), first.committed, first.rejected,
                first.warm_seeded, first.verified);
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv,
                  {"seeds", "base-seed", "scenario", "transition-log",
                   "verbose", "help"});
  if (args.get_bool("help", false)) {
    std::printf(
        "rtpool_stress — randomized guard/fault-injection harness\n"
        "  --seeds=N            number of random (task, fault plan) draws (20)\n"
        "  --base-seed=S        root seed; every failure replays from it (1)\n"
        "  --scenario=a,b,...   subset of: safe-global, deadlock, partitioned,\n"
        "                       worker-death, worker-hang, elastic (default all)\n"
        "  --transition-log=F   append elastic transition logs (JSON/line) to F\n"
        "  --verbose            per-run details\n");
    return 0;
  }
  const std::int64_t seeds = args.get_int("seeds", 20);
  const std::uint64_t base_seed = args.get_uint64("base-seed", 1);
  g_verbose = args.get_bool("verbose", false);

  const std::string scenario_arg = args.get_string("scenario", "");
  std::set<std::string> scenarios;
  for (std::size_t pos = 0; pos < scenario_arg.size();) {
    const std::size_t comma = scenario_arg.find(',', pos);
    const std::size_t end = comma == std::string::npos ? scenario_arg.size() : comma;
    if (end > pos) scenarios.insert(scenario_arg.substr(pos, end - pos));
    pos = end + 1;
  }
  const std::set<std::string> known = {"safe-global", "deadlock", "partitioned",
                                       "worker-death", "worker-hang", "elastic"};
  for (const std::string& s : scenarios)
    if (known.count(s) == 0) {
      std::printf("unknown --scenario '%s'\n", s.c_str());
      return 2;
    }
  const auto want = [&scenarios](const char* name) {
    return scenarios.empty() || scenarios.count(name) != 0;
  };

  std::FILE* transition_log = nullptr;
  const std::string log_path = args.get_string("transition-log", "");
  if (!log_path.empty()) {
    transition_log = std::fopen(log_path.c_str(), "w");
    if (transition_log == nullptr) {
      std::printf("cannot open --transition-log '%s'\n", log_path.c_str());
      return 2;
    }
  }

  gen::TaskSetParams params;
  params.cores = 4;
  params.nfj.max_branches = 3;
  params.nfj.max_depth = 2;

  std::size_t runs = 0;
  for (std::int64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    util::Rng rng(seed);
    const model::DagTask task =
        gen::generate_task(params, static_cast<std::size_t>(i), 0.5, rng);

    if (want("safe-global")) { run_safe_global(task, seed); ++runs; }
    if (want("deadlock")) {
      run_deadlock(task, seed, exec::RecoveryPolicy::kReport);
      run_deadlock(task, seed, exec::RecoveryPolicy::kEmergencyWorker);
      runs += 2;
    }
    if (want("partitioned")) { run_partitioned(task, seed); ++runs; }
    if (want("worker-death")) {
      run_worker_death_shared(task, seed, /*degraded_variant=*/false);
      run_worker_death_shared(task, seed, /*degraded_variant=*/true);
      run_worker_death_partitioned(task, seed);
      runs += 3;
    }
    if (want("worker-hang")) { run_worker_hang(task, seed); ++runs; }
    if (want("elastic")) { run_elastic(seed, transition_log); ++runs; }
  }

  if (transition_log != nullptr) std::fclose(transition_log);
  std::printf("rtpool_stress: %zu runs over %lld seeds, %d failure(s)\n", runs,
              static_cast<long long>(seeds), g_failures);
  return g_failures == 0 ? 0 : 1;
}
