// Randomized robustness harness for the runtime guard (exec/guard.h).
//
// For each seed, generates a random NFJ task and runs it on a real thread
// pool under a seeded fault plan (WCET overruns, stalls, thrown node
// bodies, dropped notifies — exec/fault.h), across three scenarios:
//
//   safe-global   — m = b̄(τ)+1 shared-queue workers: Lemma 1 guarantees
//                   deadlock freedom, so the guard must never report a
//                   stall (injected lost wakeups must be healed, thrown
//                   bodies must degrade to failed_nodes, never terminate);
//   deadlock      — m ≤ b̄(τ) workers: the blocking chain can close. Under
//                   kReport the guard must either complete or produce a
//                   quiescence-proof StallReport that the static analysis
//                   agrees with (Lemma 1 witness exists); under
//                   kEmergencyWorker with a b̄(τ) injection cap the run
//                   must COMPLETE — injected workers restore l̄ > 0;
//   partitioned   — Algorithm 1 placement on a kPerWorker pool: Eq. (3)
//                   holds, so no deadlock report is acceptable.
//
// Every verdict is checked; any violation prints the replay seed and the
// fault plan and exits 1. All randomness derives from --base-seed, so every
// failure is replayable.
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "analysis/concurrency.h"
#include "analysis/deadlock.h"
#include "analysis/partition.h"
#include "exec/graph_executor.h"
#include "exec/thread_pool.h"
#include "gen/taskset_generator.h"
#include "model/task_set.h"
#include "util/args.h"
#include "util/rng.h"

namespace {

using namespace rtpool;

int g_failures = 0;
bool g_verbose = false;

void fail(const std::string& context, const exec::FaultPlan& plan,
          const std::string& what) {
  std::printf("FAIL [%s] %s\n      plan: %s\n", context.c_str(), what.c_str(),
              exec::describe(plan).c_str());
  ++g_failures;
}

/// Thrown-body bookkeeping must match the plan: every throw fault that ran
/// is in failed_nodes, and nothing else is.
void check_failed_nodes(const std::string& context, const exec::FaultPlan& plan,
                        const exec::ExecReport& report, bool run_complete) {
  std::set<model::NodeId> throws;
  for (const auto& [v, f] : plan.faults())
    if (f.kind == exec::FaultKind::kThrow) throws.insert(v);
  const std::set<model::NodeId> failed(report.failed_nodes.begin(),
                                       report.failed_nodes.end());
  for (model::NodeId v : failed)
    if (throws.count(v) == 0)
      fail(context, plan, "node " + std::to_string(v) + " failed without a throw fault");
  if (run_complete && failed != throws)
    fail(context, plan, "completed run lost injected throws (" +
                            std::to_string(failed.size()) + "/" +
                            std::to_string(throws.size()) + " recorded)");
  if (!throws.empty() && !failed.empty() && report.first_error.empty())
    fail(context, plan, "failed nodes recorded but first_error empty");
}

exec::FaultPlan draw_plan(const model::DagTask& task, std::uint64_t seed,
                          bool allow_stalls) {
  exec::FaultPlanParams params;
  params.p_overrun = 0.2;
  params.p_throw = 0.15;
  params.p_drop_notify = 0.3;
  params.p_stall = allow_stalls ? 0.1 : 0.0;
  params.max_stall = std::chrono::milliseconds(10);
  params.max_overrun_factor = 4.0;
  return exec::make_random_fault_plan(task, params, seed);
}

void run_safe_global(const model::DagTask& task, std::uint64_t seed) {
  const std::size_t bbar = analysis::max_affecting_forks(task);
  exec::ThreadPool pool(bbar + 1);
  exec::GraphExecutor executor(pool, task);
  exec::ExecOptions options;
  options.microseconds_per_unit = 2.0;
  options.watchdog = std::chrono::milliseconds(5000);
  options.faults = draw_plan(task, seed, /*allow_stalls=*/true);
  const exec::ExecReport report = executor.run_blocking(options);

  const std::string context = "safe-global seed=" + std::to_string(seed);
  if (!report.completed)
    fail(context, options.faults, "Lemma-1-safe run did not complete");
  if (report.stall.has_value())
    fail(context, options.faults,
         "false stall report: " + report.stall->describe());
  check_failed_nodes(context, options.faults, report, report.completed);
  if (g_verbose)
    std::printf("  [%s] ok: %zu nodes, %zu failed, %zu lost wakeups healed\n",
                context.c_str(), report.nodes_executed,
                report.failed_nodes.size(), report.lost_wakeups_recovered);
}

void run_deadlock(const model::DagTask& task, std::uint64_t seed,
                  exec::RecoveryPolicy policy) {
  const std::size_t bbar = analysis::max_affecting_forks(task);
  if (bbar < 1) return;
  const std::size_t m = bbar > 1 ? bbar : 1;
  exec::ThreadPool pool(m);
  exec::GraphExecutor executor(pool, task);
  exec::ExecOptions options;
  options.microseconds_per_unit = 2.0;
  options.watchdog = std::chrono::milliseconds(5000);
  options.recovery = policy;
  options.max_emergency_workers = bbar;  // enough to restore l̄ > 0
  // No stall faults here: a deadlock verdict must stay a deadlock verdict.
  options.faults = draw_plan(task, seed, /*allow_stalls=*/false);

  const std::string context = std::string("deadlock/") +
                              exec::to_string(policy) +
                              " seed=" + std::to_string(seed);
  const exec::ExecReport report = executor.run_blocking(options);
  if (report.stall.has_value() && !report.stall->budget_exhausted &&
      !analysis::find_lemma1_witness(task, m).has_value())
    fail(context, options.faults,
         "stall reported but Lemma 1 guarantees freedom: " +
             report.stall->describe());
  if (policy == exec::RecoveryPolicy::kEmergencyWorker && !report.completed)
    fail(context, options.faults,
         "emergency workers (cap b̄) failed to rescue the run");
  if (policy == exec::RecoveryPolicy::kReport && !report.completed &&
      !report.stall.has_value())
    fail(context, options.faults, "cancelled without a stall report");
  check_failed_nodes(context, options.faults, report, report.completed);
  if (g_verbose)
    std::printf("  [%s] %s: %zu/%zu nodes, %zu emergency\n", context.c_str(),
                report.completed ? "completed" : "stalled",
                report.nodes_executed, task.node_count(),
                report.emergency_workers);
}

#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's -Wmaybe-uninitialized cannot track std::optional's engaged flag
// through the inlined emplace/reset under -fsanitize=address and flags the
// freshly default-constructed ExecOptions::assignment.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void run_partitioned(const model::DagTask& task, std::uint64_t seed) {
  const std::size_t bbar = analysis::max_affecting_forks(task);
  const std::size_t m = bbar + 1;
  model::TaskSet ts(m);
  ts.add(task);
  const analysis::PartitionResult partition = analysis::partition_algorithm1(ts);
  if (!partition.success()) return;  // Algorithm 1 may fail; normal result
  const analysis::NodeAssignment& assignment = partition.partition->per_task[0];

  exec::ThreadPool pool(m, exec::ThreadPool::QueueMode::kPerWorker);
  exec::GraphExecutor executor(pool, task);
  exec::ExecOptions options;
  options.microseconds_per_unit = 2.0;
  options.watchdog = std::chrono::milliseconds(5000);
  options.assignment.emplace(assignment);
  options.faults = draw_plan(task, seed, /*allow_stalls=*/true);

  const std::string context = "partitioned seed=" + std::to_string(seed);
  const exec::ExecReport report = executor.run_blocking(options);
  if (!report.completed)
    fail(context, options.faults, "Lemma-3-safe partitioned run stalled");
  if (report.stall.has_value())
    fail(context, options.faults,
         "false deadlock report on an Eq. (3) placement: " +
             report.stall->describe());
  check_failed_nodes(context, options.faults, report, report.completed);
  if (g_verbose)
    std::printf("  [%s] ok: %zu nodes on %zu workers\n", context.c_str(),
                report.nodes_executed, m);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv,
                  {"seeds", "base-seed", "verbose", "help"});
  if (args.get_bool("help", false)) {
    std::printf(
        "rtpool_stress — randomized guard/fault-injection harness\n"
        "  --seeds=N      number of random (task, fault plan) draws (20)\n"
        "  --base-seed=S  root seed; every failure replays from it (1)\n"
        "  --verbose      per-run details\n");
    return 0;
  }
  const std::int64_t seeds = args.get_int("seeds", 20);
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(args.get_int("base-seed", 1));
  g_verbose = args.get_bool("verbose", false);

  gen::TaskSetParams params;
  params.cores = 4;
  params.nfj.max_branches = 3;
  params.nfj.max_depth = 2;

  std::size_t runs = 0;
  for (std::int64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    util::Rng rng(seed);
    const model::DagTask task =
        gen::generate_task(params, static_cast<std::size_t>(i), 0.5, rng);

    run_safe_global(task, seed);
    run_deadlock(task, seed, exec::RecoveryPolicy::kReport);
    run_deadlock(task, seed, exec::RecoveryPolicy::kEmergencyWorker);
    run_partitioned(task, seed);
    runs += 4;
  }

  std::printf("rtpool_stress: %zu runs over %lld seeds, %d failure(s)\n", runs,
              static_cast<long long>(seeds), g_failures);
  return g_failures == 0 ? 0 : 1;
}
