// Closed-loop load generator for the rtpool-serve admission service.
//
// Spins up a fresh AdmissionService + serve::TcpServer per configuration
// (real loopback TCP — the bench measures exactly the transport the daemon
// ships), drives a seeded request schedule through C closed-loop client
// threads, and records requests/s plus p50/p99 response latency. The sweep
// covers shard counts and batch sizes against the NAIVE baseline
// (shards=1, batch=1, cache=0: one dispatch per request, every request
// cold) and three workload mixes (cold-only, repeat-heavy, mixed with
// mutated resubmissions that exercise the incremental donor path). One
// extra run performs a mid-flight hot reload (workers and batch change
// while clients are blasting) and asserts that NOTHING is dropped.
//
// Every response's embedded "report" is compared against a reference
// rendered in-process through the same lint::render_json an rtpool_cli
// --format=json run produces — a single byte of difference is a verdict
// mismatch and fails the bench (exit 1), as does any dropped request.
// Results land in a JSON document that scripts/bench_report.py folds into
// BENCH_analysis.json as the "serve" section.
//
//   perf_serve --out serve.json [--requests 600] [--clients 16] [--seed 1]
//              [--analyzer global-limited] [--no-reload]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/rta_context.h"
#include "bench_common.h"
#include "gen/taskset_generator.h"
#include "lint/render.h"
#include "model/io.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/json.h"
#include "util/net.h"
#include "util/rng.h"

namespace {

using namespace rtpool;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Workload: families of .taskset documents plus mutated variants.

/// One submittable document with its independently computed reference
/// report (what rtpool_cli --format=json prints for the same input).
struct Doc {
  std::string text;
  std::string request_body;     ///< Pre-rendered request document (the
                                ///< client measures the service, not its
                                ///< own JSON escaping).
  std::string expected_report;  ///< lint::render_json(Report, ts).
};

struct Workload {
  std::vector<Doc> docs;
  std::vector<std::size_t> schedule;  ///< Request i submits docs[schedule[i]].
};

gen::TaskSetParams family_params() {
  // Big enough that one cold admission costs ~1ms of document parsing and
  // DagTask cache construction (which dominates cold service time — this
  // repo's analysis kernels run in microseconds), small enough that the
  // client-side frame pump doesn't swamp the comparison.
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 16;
  params.total_utilization = 0.6 * 8.0;
  params.nfj.min_branches = 3;
  params.nfj.max_branches = 5;
  return params;
}

model::TaskSet generate_family(std::uint64_t seed) {
  const gen::TaskSetParams params = family_params();
  for (std::uint64_t salt = 0;; ++salt) {
    util::Rng rng(seed * 1000003 + salt);
    try {
      return gen::generate_task_set(params, rng);
    } catch (const gen::GenerationError&) {
      if (salt > 50) throw;
    }
  }
}

/// Scale the first `node ... wcet=` line of the LOWEST-priority task block
/// (numerically largest `priority=`) — a textual mutation that keeps the
/// task-name multiset (same family, same shard) while dirtying exactly one
/// task, so a warm resubmission takes the incremental donor path with the
/// longest possible clean prefix.
std::string mutate_lowest_priority_task(const std::string& text, int step) {
  std::istringstream in(text);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  std::size_t best_task_line = std::string::npos;
  long best_priority = -1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t at = lines[i].rfind("priority=", std::string::npos);
    if (lines[i].rfind("task ", 0) != 0 || at == std::string::npos) continue;
    const long priority = std::stol(lines[i].substr(at + 9));
    if (priority > best_priority) {
      best_priority = priority;
      best_task_line = i;
    }
  }
  if (best_task_line == std::string::npos) return text;
  for (std::size_t i = best_task_line + 1; i < lines.size(); ++i) {
    if (lines[i].rfind("endtask", 0) == 0) break;
    const std::size_t at = lines[i].find("wcet=");
    if (lines[i].rfind("node ", 0) != 0 || at == std::string::npos) continue;
    std::size_t end = lines[i].find(' ', at);
    if (end == std::string::npos) end = lines[i].size();
    const double wcet = std::stod(lines[i].substr(at + 5, end - (at + 5)));
    std::ostringstream patched;
    patched << lines[i].substr(0, at + 5) << wcet * (1.0 + 0.05 * step)
            << lines[i].substr(end);
    lines[i] = patched.str();
    break;
  }
  std::ostringstream out;
  for (const std::string& l : lines) out << l << '\n';
  return out.str();
}

/// Reference verdict: exactly what the service must embed as "report".
std::string reference_report(const std::string& text,
                             const analysis::Analyzer& analyzer) {
  std::istringstream in(text);
  const model::TaskSet ts = model::read_task_set(in);
  analysis::RtaContext ctx(ts);
  const analysis::Report report =
      analyzer.analyze(ts, ctx, analysis::AnalyzerOptions{});
  return lint::render_json(report, ts);
}

Doc make_doc(const model::TaskSet& ts, const analysis::Analyzer& analyzer,
             int mutation_step, std::size_t doc_index) {
  std::ostringstream os;
  model::write_task_set(os, ts);
  Doc doc;
  doc.text = mutation_step == 0
                 ? os.str()
                 : mutate_lowest_priority_task(os.str(), mutation_step);
  doc.expected_report = reference_report(doc.text, analyzer);
  std::ostringstream req;
  util::JsonWriter w(req);
  w.begin_object();
  w.kv("id", "d" + std::to_string(doc_index));
  w.kv("taskset", doc.text);
  w.end_object();
  doc.request_body = req.str();
  return doc;
}

/// mix = "cold": every request a never-seen family. "repeat": requests
/// cycle over a handful of base documents (memo-bound after first touch).
/// "mixed": bases + mutated variants + a few fresh families (memo,
/// incremental and cold paths all exercised).
Workload build_workload(const std::string& mix, std::size_t requests,
                        std::uint64_t seed,
                        const analysis::Analyzer& analyzer) {
  Workload w;
  util::Rng rng(seed ^ serve::fnv1a(serve::kFnvOffset, mix));
  const auto add_family = [&](std::uint64_t family_seed, int mutants) {
    const model::TaskSet base = generate_family(family_seed);
    for (int step = 0; step <= mutants; ++step)
      w.docs.push_back(make_doc(base, analyzer, step, w.docs.size()));
  };

  if (mix == "cold") {
    // One distinct single-use family per request would dominate the run
    // with generation time; cap the distinct pool and disable reuse gains
    // via the naive-config cache instead where relevant.
    const std::size_t distinct = std::min<std::size_t>(requests, 48);
    for (std::size_t f = 0; f < distinct; ++f) add_family(seed + f, 0);
    for (std::size_t i = 0; i < requests; ++i)
      w.schedule.push_back(i % w.docs.size());
  } else if (mix == "repeat") {
    for (std::size_t f = 0; f < 4; ++f) add_family(seed + f, 0);
    for (std::size_t i = 0; i < requests; ++i)
      w.schedule.push_back(rng.index(w.docs.size()));
  } else {  // mixed
    const std::size_t families = 6, mutants = 3;
    for (std::size_t f = 0; f < families; ++f)
      add_family(seed + f, static_cast<int>(mutants));
    for (std::size_t f = 0; f < 8; ++f) add_family(seed + 100 + f, 0);
    for (std::size_t i = 0; i < requests; ++i)
      w.schedule.push_back(rng.index(w.docs.size()));
  }
  return w;
}

// ---------------------------------------------------------------------------
// One measured run.

struct RunSpec {
  std::string name;
  std::string mix;
  serve::ServiceConfig config;
  bool reload_mid_run = false;
};

struct RunResult {
  RunSpec spec;
  double wall_s = 0.0;
  double requests_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t mismatches = 0;   ///< report bytes != reference.
  std::uint64_t errors = 0;       ///< ok:false responses.
  std::uint64_t dropped = 0;      ///< submitted - answered.
  serve::ServiceStats stats;
  bool reload_done = false;
};

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

RunResult run_one(const RunSpec& spec, const Workload& workload,
                  std::size_t clients) {
  RunResult result;
  result.spec = spec;

  serve::AdmissionService service(spec.config);
  serve::TcpServer server(service, "127.0.0.1", 0);
  server.start();
  const std::uint16_t port = server.port();

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::uint64_t> answered{0}, mismatches{0}, errors{0};
  std::vector<std::vector<double>> latencies(clients);

  const auto client_body = [&](std::size_t client_index) {
    util::Socket socket = util::tcp_connect("127.0.0.1", port);
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= workload.schedule.size()) break;
      const Doc& doc = workload.docs[workload.schedule[i]];
      const Clock::time_point start = Clock::now();
      util::write_frame(socket, doc.request_body);
      const std::optional<std::string> response = util::read_frame(socket);
      const Clock::time_point stop = Clock::now();
      if (!response.has_value()) break;  // server gone: drop shows in count
      answered.fetch_add(1, std::memory_order_relaxed);
      latencies[client_index].push_back(
          std::chrono::duration<double, std::milli>(stop - start).count());

      if (response->find("\"ok\":true") == std::string::npos) {
        errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::string report = serve::extract_member(*response, "report");
      // render_json ends with '\n'; brace matching stops at the closing
      // brace, so re-append before the byte comparison.
      report += '\n';
      if (report != doc.expected_report)
        mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // The hot-reload run: once half the schedule is answered, commit a
  // worker + batch change from a separate control connection while the
  // clients keep blasting.
  std::thread reloader;
  if (spec.reload_mid_run) {
    reloader = std::thread([&] {
      const std::uint64_t half = workload.schedule.size() / 2;
      while (answered.load(std::memory_order_relaxed) < half)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      service.reload(std::nullopt, spec.config.workers - 1, std::nullopt,
                     std::max<std::size_t>(1, spec.config.batch / 2),
                     std::nullopt);
      result.reload_done = true;
    });
  }

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c)
    threads.emplace_back(client_body, c);
  for (std::thread& t : threads) t.join();
  const Clock::time_point t1 = Clock::now();
  if (reloader.joinable()) reloader.join();

  service.request_shutdown();
  server.stop();

  result.wall_s = std::chrono::duration<double>(t1 - t0).count();
  result.completed = answered.load();
  result.mismatches = mismatches.load();
  result.errors = errors.load();
  result.dropped = workload.schedule.size() - result.completed;
  result.requests_per_s =
      result.wall_s > 0.0
          ? static_cast<double>(result.completed) / result.wall_s
          : 0.0;
  std::vector<double> all;
  for (const std::vector<double>& per_client : latencies)
    all.insert(all.end(), per_client.begin(), per_client.end());
  std::sort(all.begin(), all.end());
  result.p50_ms = percentile(all, 0.50);
  result.p99_ms = percentile(all, 0.99);
  result.stats = service.stats();
  return result;
}

void write_result(util::JsonWriter& w, const RunResult& r) {
  w.begin_object();
  w.kv("name", r.spec.name);
  w.kv("mix", r.spec.mix);
  w.kv("workers", static_cast<std::int64_t>(r.spec.config.workers));
  w.kv("shards", static_cast<std::int64_t>(r.spec.config.shards));
  w.kv("batch", static_cast<std::int64_t>(r.spec.config.batch));
  w.kv("cache", static_cast<std::int64_t>(r.spec.config.cache));
  w.kv("reload_mid_run", r.spec.reload_mid_run);
  w.kv("reload_done", r.reload_done);
  w.kv("wall_s", r.wall_s);
  w.kv("requests_per_s", r.requests_per_s);
  w.kv("p50_ms", r.p50_ms);
  w.kv("p99_ms", r.p99_ms);
  w.kv("completed", static_cast<std::int64_t>(r.completed));
  w.kv("dropped", static_cast<std::int64_t>(r.dropped));
  w.kv("errors", static_cast<std::int64_t>(r.errors));
  w.kv("verdict_mismatches", static_cast<std::int64_t>(r.mismatches));
  w.kv("memo_hits", static_cast<std::int64_t>(r.stats.memo_hits));
  w.kv("fast_hits", static_cast<std::int64_t>(r.stats.fast_hits));
  w.kv("incremental", static_cast<std::int64_t>(r.stats.incremental));
  w.kv("incremental_task_hits",
       static_cast<std::int64_t>(r.stats.incremental_task_hits));
  w.kv("cold", static_cast<std::int64_t>(r.stats.cold));
  w.kv("batches", static_cast<std::int64_t>(r.stats.batches));
  w.kv("max_batch", static_cast<std::int64_t>(r.stats.max_batch));
  w.kv("reloads", static_cast<std::int64_t>(r.stats.reloads));
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args = bench::parse_args(
        argc, argv, {"requests", "clients", "out", "analyzer", "no-reload"});
    const std::size_t requests =
        static_cast<std::size_t>(args.get_int("requests", 600));
    const std::size_t clients =
        static_cast<std::size_t>(args.get_int("clients", 16));
    const std::uint64_t seed = args.get_uint64("seed", 1);
    const std::string out = args.get_string("out", "serve_bench.json");
    const std::string analyzer_name =
        args.get_string("analyzer", "global-limited");
    const bool with_reload = !args.get_bool("no-reload", false);
    const analysis::Analyzer& analyzer = analysis::get_analyzer(analyzer_name);

    std::printf("perf_serve: building workloads (requests=%zu)\n", requests);
    const Workload mixed = build_workload("mixed", requests, seed, analyzer);
    const Workload cold = build_workload("cold", requests, seed, analyzer);
    const Workload repeat = build_workload("repeat", requests, seed, analyzer);

    const auto cfg = [&](std::size_t shards, std::size_t batch,
                         std::size_t cache) {
      serve::ServiceConfig config;
      config.analyzer = analyzer_name;
      config.workers = 4;
      config.shards = shards;
      config.batch = batch;
      config.cache = cache;
      return config;
    };

    // The naive baseline of the acceptance criterion: one request per
    // dispatch, no caches — every request is a cold analysis.
    std::vector<RunSpec> sweep = {
        {"naive", "mixed", cfg(1, 1, 0), false},
        {"batch8", "mixed", cfg(1, 8, 256), false},
        {"shard4", "mixed", cfg(4, 1, 256), false},
        {"shard4_batch8", "mixed", cfg(4, 8, 256), false},
        {"shard4_batch8_cold", "cold", cfg(4, 8, 256), false},
        {"shard4_batch8_repeat", "repeat", cfg(4, 8, 256), false},
    };
    if (with_reload)
      sweep.push_back({"shard4_batch8_reload", "mixed", cfg(4, 8, 256), true});

    std::vector<RunResult> results;
    for (const RunSpec& spec : sweep) {
      const Workload& workload = spec.mix == "cold"    ? cold
                                 : spec.mix == "repeat" ? repeat
                                                        : mixed;
      results.push_back(run_one(spec, workload, clients));
      const RunResult& r = results.back();
      std::printf(
          "  %-22s %-6s %8.1f req/s  p50 %7.3f ms  p99 %7.3f ms  "
          "(memo %llu/fast %llu, incr %llu, cold %llu, dropped %llu, "
          "mismatch %llu)\n",
          r.spec.name.c_str(), r.spec.mix.c_str(), r.requests_per_s, r.p50_ms,
          r.p99_ms, static_cast<unsigned long long>(r.stats.memo_hits),
          static_cast<unsigned long long>(r.stats.fast_hits),
          static_cast<unsigned long long>(r.stats.incremental),
          static_cast<unsigned long long>(r.stats.cold),
          static_cast<unsigned long long>(r.dropped),
          static_cast<unsigned long long>(r.mismatches));
    }

    double naive_rps = 0.0, best_rps = 0.0;
    std::uint64_t dropped_total = 0, mismatch_total = 0, error_total = 0;
    bool reload_ok = !with_reload;
    for (const RunResult& r : results) {
      if (r.spec.name == "naive") naive_rps = r.requests_per_s;
      if (r.spec.name == "shard4_batch8") best_rps = r.requests_per_s;
      if (r.spec.reload_mid_run)
        reload_ok = r.reload_done && r.dropped == 0 && r.stats.reloads >= 1;
      dropped_total += r.dropped;
      mismatch_total += r.mismatches;
      error_total += r.errors;
    }
    const double speedup = naive_rps > 0.0 ? best_rps / naive_rps : 0.0;

    std::ofstream os(out);
    util::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "rtpool-serve-bench-v1");
    w.kv("analyzer", analyzer_name);
    w.kv("requests", static_cast<std::int64_t>(requests));
    w.kv("clients", static_cast<std::int64_t>(clients));
    w.kv("seed", static_cast<std::int64_t>(seed));
    w.key("runs");
    w.begin_array();
    for (const RunResult& r : results) write_result(w, r);
    w.end_array();
    w.kv("speedup_batched_sharded_vs_naive", speedup);
    w.kv("dropped_total", static_cast<std::int64_t>(dropped_total));
    w.kv("verdict_mismatches_total", static_cast<std::int64_t>(mismatch_total));
    w.kv("errors_total", static_cast<std::int64_t>(error_total));
    w.kv("reload_ok", reload_ok);
    w.end_object();
    os << '\n';
    os.close();

    std::printf("perf_serve: speedup (shard4_batch8 vs naive) = %.2fx\n",
                speedup);
    std::printf("perf_serve: wrote %s\n", out.c_str());
    if (mismatch_total > 0 || error_total > 0 || dropped_total > 0 ||
        !reload_ok) {
      std::fprintf(stderr,
                   "perf_serve: FAILED (mismatches=%llu errors=%llu "
                   "dropped=%llu reload_ok=%d)\n",
                   static_cast<unsigned long long>(mismatch_total),
                   static_cast<unsigned long long>(error_total),
                   static_cast<unsigned long long>(dropped_total),
                   reload_ok ? 1 : 0);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_serve: %s\n", e.what());
    return 1;
  }
}
