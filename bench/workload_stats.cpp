// Workload characterization: what the Section-5 generator actually
// produces, for the record (the paper does not report these statistics).
//
// For each (branches, depth) configuration the table shows, over randomly
// generated tasks: graph size, blocking-region counts, the paper's b̄, the
// antichain refinement, and the probability that a pool of m = 8 threads
// loses its deadlock-freedom guarantee (l̄ <= 0) — the structural driver
// behind every Figure-2 trend.
#include <cstdio>

#include "analysis/antichain.h"
#include "analysis/concurrency.h"
#include "bench_common.h"
#include "exp/schedulability.h"
#include "gen/taskset_generator.h"
#include "util/csv.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args = bench::parse_args(argc, argv, {"m", "csv"});
  const bench::CommonFlags flags = bench::common_flags(args, 2000);
  const auto m = static_cast<std::size_t>(args.get_int("m", 8));
  const int trials = flags.trials;
  const std::uint64_t seed = flags.seed;
  const int threads = flags.threads;

  std::printf("Generator characterization  [m=%zu, %d tasks per row]\n", m, trials);
  std::printf("%-14s | %-14s %-8s %-10s %-10s %-10s %-10s\n", "branches/depth",
              "nodes(avg/max)", "regions", "bbar-avg", "anti-avg", "P(lb<=0)",
              "P(anti<=0)");

  util::CsvWriter csv(args.get_string("csv", "workload_stats.csv"),
                      {"branches_min", "branches_max", "depth", "nodes_avg",
                       "nodes_max", "regions_avg", "bbar_avg", "antichain_avg",
                       "p_lbar_zero", "p_antichain_zero"});

  struct Config {
    int bmin, bmax, depth;
  };
  exp::ExperimentEngine engine(threads);
  for (const Config& c : {Config{2, 4, 2}, Config{3, 5, 2}, Config{5, 7, 2},
                          Config{3, 5, 3}, Config{2, 4, 3}}) {
    gen::TaskSetParams params;
    params.cores = m;
    params.nfj.min_branches = c.bmin;
    params.nfj.max_branches = c.bmax;
    params.nfj.max_depth = c.depth;
    const util::Rng rng(seed);

    util::RunningStats nodes;
    util::RunningStats regions;
    util::RunningStats bbar;
    util::RunningStats antichain;
    util::RatioCounter lbar_zero;
    util::RatioCounter anti_zero;
    struct TaskStats {
      std::size_t nodes = 0, regions = 0, bbar = 0, antichain = 0;
    };
    engine.map_trials(
        static_cast<std::size_t>(trials), rng,
        [&](std::size_t /*trial*/, util::Rng& arng) {
          const model::DagTask task = gen::generate_task(params, 0, 0.5, arng);
          return TaskStats{task.node_count(), task.blocking_fork_count(),
                           analysis::max_affecting_forks(task),
                           analysis::max_simultaneous_suspensions(task)};
        },
        [&](std::size_t /*trial*/, const TaskStats& s) {
          nodes.add(static_cast<double>(s.nodes));
          regions.add(static_cast<double>(s.regions));
          bbar.add(static_cast<double>(s.bbar));
          antichain.add(static_cast<double>(s.antichain));
          lbar_zero.add(s.bbar >= m);
          anti_zero.add(s.antichain >= m);
        });
    std::printf("%d-%d / %-6d | %6.1f/%-7.0f %-8.2f %-10.2f %-10.2f %-10.3f "
                "%-10.3f\n",
                c.bmin, c.bmax, c.depth, nodes.mean(), nodes.max(),
                regions.mean(), bbar.mean(), antichain.mean(),
                lbar_zero.ratio(), anti_zero.ratio());
    csv.row_values(c.bmin, c.bmax, c.depth, nodes.mean(), nodes.max(),
                   regions.mean(), bbar.mean(), antichain.mean(),
                   lbar_zero.ratio(), anti_zero.ratio());
  }
  return 0;
}
