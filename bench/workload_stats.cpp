// Workload characterization: what the Section-5 generator actually
// produces, for the record (the paper does not report these statistics).
//
// For each (branches, depth) configuration the table shows, over randomly
// generated tasks: graph size, blocking-region counts, the paper's b̄, the
// antichain refinement, and the probability that a pool of m = 8 threads
// loses its deadlock-freedom guarantee (l̄ <= 0) — the structural driver
// behind every Figure-2 trend.
#include <cstdio>

#include "analysis/antichain.h"
#include "analysis/concurrency.h"
#include "gen/taskset_generator.h"
#include "util/args.h"
#include "util/csv.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args(argc, argv, {"m", "trials", "seed", "csv"});
  const auto m = static_cast<std::size_t>(args.get_int("m", 8));
  const int trials = static_cast<int>(args.get_int("trials", 2000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("Generator characterization  [m=%zu, %d tasks per row]\n", m, trials);
  std::printf("%-14s | %-14s %-8s %-10s %-10s %-10s %-10s\n", "branches/depth",
              "nodes(avg/max)", "regions", "bbar-avg", "anti-avg", "P(lb<=0)",
              "P(anti<=0)");

  util::CsvWriter csv(args.get_string("csv", "workload_stats.csv"),
                      {"branches_min", "branches_max", "depth", "nodes_avg",
                       "nodes_max", "regions_avg", "bbar_avg", "antichain_avg",
                       "p_lbar_zero", "p_antichain_zero"});

  struct Config {
    int bmin, bmax, depth;
  };
  for (const Config& c : {Config{2, 4, 2}, Config{3, 5, 2}, Config{5, 7, 2},
                          Config{3, 5, 3}, Config{2, 4, 3}}) {
    gen::TaskSetParams params;
    params.cores = m;
    params.nfj.min_branches = c.bmin;
    params.nfj.max_branches = c.bmax;
    params.nfj.max_depth = c.depth;
    util::Rng rng(seed);

    util::RunningStats nodes;
    util::RunningStats regions;
    util::RunningStats bbar;
    util::RunningStats antichain;
    util::RatioCounter lbar_zero;
    util::RatioCounter anti_zero;
    for (int t = 0; t < trials; ++t) {
      const model::DagTask task = gen::generate_task(params, 0, 0.5, rng);
      nodes.add(static_cast<double>(task.node_count()));
      regions.add(static_cast<double>(task.blocking_fork_count()));
      const std::size_t b = analysis::max_affecting_forks(task);
      const std::size_t a = analysis::max_simultaneous_suspensions(task);
      bbar.add(static_cast<double>(b));
      antichain.add(static_cast<double>(a));
      lbar_zero.add(b >= m);
      anti_zero.add(a >= m);
    }
    std::printf("%d-%d / %-6d | %6.1f/%-7.0f %-8.2f %-10.2f %-10.2f %-10.3f "
                "%-10.3f\n",
                c.bmin, c.bmax, c.depth, nodes.mean(), nodes.max(),
                regions.mean(), bbar.mean(), antichain.mean(),
                lbar_zero.ratio(), anti_zero.ratio());
    csv.row_values(c.bmin, c.bmax, c.depth, nodes.mean(), nodes.max(),
                   regions.mean(), bbar.mean(), antichain.mean(),
                   lbar_zero.ratio(), anti_zero.ratio());
  }
  return 0;
}
