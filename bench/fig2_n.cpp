// Figure 2 (e)/(f): schedulability ratio as the number of tasks n varies
// (m = 8, free node typing, nothing discarded).
//
// More tasks make it likelier that at least one of them has a severely
// reduced available concurrency, so the proposed tests fall further below
// the baselines as n grows — the trend reported in the paper.
//
// The compared tests come from the analyzer registry; override either arm
// with --global-pair/--part-pair "baseline,proposed" registry names (see
// --list-analyzers).
#include <cstdio>

#include "bench_common.h"
#include "exp/report.h"
#include "exp/schedulability.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args = bench::parse_args(
      argc, argv,
      {"m", "n", "u-global", "u-part", "csv", "branches-min", "branches-max",
       "global-pair", "part-pair"});
  const bench::CommonFlags flags = bench::common_flags(args);
  const auto m = static_cast<std::size_t>(args.get_int("m", 8));
  const auto ns = args.get_int_list("n", {2, 4, 6, 8, 10, 12, 14, 16});
  const double u_global = args.get_double("u-global", 0.3 * static_cast<double>(m));
  const double u_part = args.get_double("u-part", 0.15 * static_cast<double>(m));
  const exp::AnalyzerPair global_pair = bench::parse_pair(
      args.get_string("global-pair", ""), exp::Scheduler::kGlobal);
  const exp::AnalyzerPair part_pair = bench::parse_pair(
      args.get_string("part-pair", ""), exp::Scheduler::kPartitioned);

  std::printf("Figure 2 (e)/(f): schedulability vs n  [m=%zu U_glob=%.2f "
              "U_part=%.2f trials=%d seed=%llu threads=%d]\n",
              m, u_global, u_part, flags.trials,
              static_cast<unsigned long long>(flags.seed), flags.threads);
  std::printf("  global: %s vs %s   partitioned: %s vs %s\n",
              std::string(global_pair.baseline->name()).c_str(),
              std::string(global_pair.proposed->name()).c_str(),
              std::string(part_pair.baseline->name()).c_str(),
              std::string(part_pair.proposed->name()).c_str());

  exp::ExperimentEngine engine(flags.threads);
  std::vector<exp::SweepRow> rows;
  for (std::int64_t n : ns) {
    exp::PointConfig config;
    config.gen.cores = m;
    config.gen.task_count = static_cast<std::size_t>(n);
    // Richer graphs (3-5 branches) give the blocking-fork count enough
    // variance for the reduced-concurrency effects the figure shows.
    config.gen.nfj.min_branches =
        static_cast<int>(args.get_int("branches-min", 5));
    config.gen.nfj.max_branches =
        static_cast<int>(args.get_int("branches-max", 7));
    config.filter_baseline = false;
    config.trials = flags.trials;
    config.max_attempts = flags.trials * 100;

    exp::SweepRow row;
    row.x = static_cast<double>(n);
    {
      config.gen.total_utilization = u_global;
      const util::Rng rng(flags.seed * 1000003 + static_cast<std::uint64_t>(n));
      row.global = engine.evaluate_point(global_pair, config, rng);
    }
    {
      config.gen.total_utilization = u_part;
      const util::Rng rng(flags.seed * 2000003 + static_cast<std::uint64_t>(n));
      row.partitioned = engine.evaluate_point(part_pair, config, rng);
    }
    rows.push_back(row);
    std::printf("  n=%-3lld global %.3f/%.3f  partitioned %.3f/%.3f\n",
                static_cast<long long>(n), row.global.baseline_ratio(),
                row.global.proposed_ratio(), row.partitioned.baseline_ratio(),
                row.partitioned.proposed_ratio());
  }

  exp::print_sweep("Figure 2(e)/(f): schedulability ratio vs n (m=8)", "n", rows);
  exp::write_sweep_csv(args.get_string("csv", "fig2_n.csv"), "n", rows);
  return 0;
}
