// Perf-regression harness for the experiment engine and analysis kernels.
//
// Times canonical evaluation points (one Figure-2 l_max point per scheduler
// arm, one unfiltered Figure-2(c) point, one pessimism-gap style point)
// across a list of engine thread counts, VERIFIES that every run is
// bit-identical to the single-threaded reference (the engine's core
// guarantee), and writes the timings to a JSON report
// (`BENCH_analysis.json`) that CI uploads and `scripts/bench_report.py`
// merges with the google-benchmark kernel numbers from `perf_analysis`.
//
// Exit status: 0 on success, 1 if any thread count produced a result that
// differs from the reference — a determinism regression, not a perf one.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/sensitivity.h"
#include "bench_common.h"
#include "exp/elastic_scenarios.h"
#include "exp/schedulability.h"
#include "gen/taskset_generator.h"
#include "util/json.h"

namespace {

using namespace rtpool;

struct CanonicalPoint {
  std::string name;
  exp::Scheduler scheduler;
  exp::PointConfig config;
  std::uint64_t seed_salt;
};

std::vector<CanonicalPoint> canonical_points(int trials, int certify_sample) {
  std::vector<CanonicalPoint> points;

  // Figure 2(a)/(b) style: m = 8, l_max = 4 (blocking window pinned to
  // b̄ = 4), baseline filter on — exercises the discard/regenerate path.
  exp::PointConfig lmax;
  lmax.gen.cores = 8;
  lmax.gen.task_count = 6;
  lmax.gen.nfj.min_branches = 3;
  lmax.gen.nfj.max_branches = 5;
  lmax.gen.blocking_window = gen::BlockingWindow{4, 4};
  lmax.filter_baseline = true;
  lmax.trials = trials;
  lmax.max_attempts = trials * 400;
  lmax.certify_sample = certify_sample;
  lmax.gen.total_utilization = 0.45 * 8.0;
  points.push_back({"fig2_lmax4_global", exp::Scheduler::kGlobal, lmax, 1000003});
  lmax.gen.total_utilization = 0.175 * 8.0;
  points.push_back(
      {"fig2_lmax4_partitioned", exp::Scheduler::kPartitioned, lmax, 2000003});

  // Figure 2(c) style: m = 8, free typing, nothing discarded.
  exp::PointConfig m8;
  m8.gen.cores = 8;
  m8.gen.task_count = 6;
  m8.gen.nfj.min_branches = 3;
  m8.gen.nfj.max_branches = 5;
  m8.gen.total_utilization = 0.3 * 8.0;
  m8.filter_baseline = false;
  m8.trials = trials;
  m8.max_attempts = trials * 100;
  m8.certify_sample = certify_sample;
  points.push_back({"fig2_m8_global", exp::Scheduler::kGlobal, m8, 3000017});
  points.push_back(
      {"fig2_m8_partitioned", exp::Scheduler::kPartitioned, m8, 4000037});

  return points;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtpool;
  // --threads is a *list* here (the sweep dimension), so the common
  // single-value accessor is skipped; parse_args still registers the
  // common keys and serves --list-analyzers.
  const util::Args args = bench::parse_args(argc, argv, {"out"});
  const auto thread_list = args.get_int_list("threads", {1, 2, 4});
  const int trials = static_cast<int>(args.get_int("trials", 200));
  const std::uint64_t seed = args.get_uint64("seed", 1);
  const int certify_sample = static_cast<int>(args.get_int("certify-sample", 0));
  const std::string out_path = args.get_string("out", "BENCH_analysis.json");

  std::printf("perf_sweep: %d trials/point, seed %llu, certify-sample %d, "
              "thread counts:",
              trials, static_cast<unsigned long long>(seed), certify_sample);
  for (std::int64_t t : thread_list) std::printf(" %lld", static_cast<long long>(t));
  std::printf("\n");

  bool all_deterministic = true;
  std::size_t total_certified = 0;
  std::size_t total_cert_failures = 0;
  std::ofstream out(out_path);
  util::JsonWriter json(out);
  json.begin_object();
  json.kv("schema", "rtpool-bench-analysis-v1");
  json.kv("trials", trials);
  json.kv("seed", seed);
  json.kv("certify_sample", certify_sample);
  json.key("points");
  json.begin_array();

  for (const CanonicalPoint& point : canonical_points(trials, certify_sample)) {
    const util::Rng rng(seed * point.seed_salt + 17);
    const exp::AnalyzerPair pair = exp::analyzers_for(point.scheduler);
    std::optional<exp::PointResult> reference;
    bool deterministic = true;
    double reference_wall = 0.0;  // wall of the first (reference) run

    // Untimed warmup: without it the first timed run (threads=1 by
    // convention) pays one-time costs — thread_local context
    // construction, arena first-touch page faults, branch-predictor
    // training — that belong to process startup, not to the measured
    // configuration, and skew the per-thread-count comparison.
    {
      exp::ExperimentEngine warm_engine(1);
      (void)warm_engine.evaluate_point(pair, point.config, rng);
    }

    json.begin_object();
    json.kv("name", point.name);
    json.kv("scheduler", std::string(exp::scheduler_name(point.scheduler)));
    json.key("runs");
    json.begin_array();
    for (std::int64_t t : thread_list) {
      exp::ExperimentEngine engine(static_cast<int>(t));
      const auto start = std::chrono::steady_clock::now();
      const exp::PointResult result =
          engine.evaluate_point(pair, point.config, rng);
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      const double trials_per_s =
          wall_s > 0.0 ? static_cast<double>(result.accepted) / wall_s : 0.0;

      bool matches = true;
      if (!reference.has_value()) {
        reference = result;
        reference_wall = wall_s;
      } else {
        matches = result == *reference;
        deterministic = deterministic && matches;
      }

      total_certified += result.certified;
      total_cert_failures += result.cert_failures;

      json.begin_object();
      json.kv("threads", t);
      json.kv("wall_s", wall_s);
      json.kv("trials_per_s", trials_per_s);
      // Speedup over the first run of the sweep (the thread_list leads
      // with 1 by default, so this reads as wall(t=1)/wall(t)).
      json.kv("threads_speedup", wall_s > 0.0 ? reference_wall / wall_s : 0.0);
      json.kv("accepted", static_cast<std::uint64_t>(result.accepted));
      json.kv("discarded", static_cast<std::uint64_t>(result.discarded));
      json.kv("certified", static_cast<std::uint64_t>(result.certified));
      json.kv("cert_failures", static_cast<std::uint64_t>(result.cert_failures));
      json.kv("matches_reference", matches);
      json.end_object();

      std::printf("  %-24s threads=%-3lld wall=%8.3fs  %8.1f trials/s  "
                  "ratio=%.3f%s\n",
                  point.name.c_str(), static_cast<long long>(t), wall_s,
                  trials_per_s, result.proposed_ratio(),
                  matches ? "" : "  MISMATCH");
    }
    json.end_array();
    json.kv("proposed_ratio", reference->proposed_ratio());
    json.kv("baseline_ratio", reference->baseline_ratio());
    json.kv("deterministic", deterministic);
    json.end_object();
    all_deterministic = all_deterministic && deterministic;
  }

  json.end_array();

  // Sensitivity search timings: the legacy generic path (scaled TaskSet
  // copy per probe) vs the fast analyzer-driven path (one RtaContext, warm
  // starts, critical-path cutoffs) on a small fixed suite. The *factors*
  // must agree within the bisection tolerance — that check is folded into
  // the exit gate (a value-agreement gate, never a wall-time one).
  {
    const int sens_sets = 5;
    const double tol = analysis::SensitivityOptions{}.tolerance;
    double legacy_wall = 0.0, fast_wall = 0.0, part_wall = 0.0;
    double max_delta = 0.0;
    std::size_t warm_hits = 0;
    int cutoff_probes = 0;
    bool agree = true;

    analysis::GlobalRtaOptions gopts;
    gopts.limited_concurrency = true;
    const analysis::Analyzer& global_a = analysis::get_analyzer("global-limited");
    const analysis::Analyzer& part_a =
        analysis::get_analyzer("partitioned-baseline");
    for (int k = 0; k < sens_sets; ++k) {
      gen::TaskSetParams params;
      params.cores = 8;
      params.task_count = 6;
      params.nfj.min_branches = 3;
      params.nfj.max_branches = 5;
      params.total_utilization = 0.3 * 8.0;
      util::Rng rng(seed * 5000011 + static_cast<std::uint64_t>(k));
      const model::TaskSet ts = gen::generate_task_set(params, rng);

      auto t0 = std::chrono::steady_clock::now();
      const double legacy = analysis::critical_scaling_factor(
          ts, [&](const model::TaskSet& set) {
            return analysis::analyze_global(set, gopts).schedulable;
          });
      auto t1 = std::chrono::steady_clock::now();
      const analysis::SensitivityResult fast =
          analysis::critical_scaling_factor(ts, global_a);
      auto t2 = std::chrono::steady_clock::now();
      legacy_wall += std::chrono::duration<double>(t1 - t0).count();
      fast_wall += std::chrono::duration<double>(t2 - t1).count();
      warm_hits += fast.warm_hits;
      cutoff_probes += fast.cutoff_probes;
      const double delta = std::abs(fast.factor - legacy);
      max_delta = std::max(max_delta, delta);
      if (delta > 3.0 * tol) agree = false;

      const auto wf = part_a.make_partition(ts);
      if (wf.success()) {
        analysis::AnalyzerOptions popts;
        popts.partition = &*wf.partition;
        auto t3 = std::chrono::steady_clock::now();
        const analysis::SensitivityResult pfast =
            analysis::critical_scaling_factor(ts, part_a, popts);
        part_wall += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t3)
                         .count();
        warm_hits += pfast.warm_hits;
        cutoff_probes += pfast.cutoff_probes;
      }
    }

    json.key("sensitivity");
    json.begin_object();
    json.kv("sets", static_cast<std::uint64_t>(sens_sets));
    json.kv("global_legacy_wall_s", legacy_wall);
    json.kv("global_fast_wall_s", fast_wall);
    json.kv("global_speedup", fast_wall > 0.0 ? legacy_wall / fast_wall : 0.0);
    json.kv("partitioned_fast_wall_s", part_wall);
    json.kv("warm_hits", static_cast<std::uint64_t>(warm_hits));
    json.kv("cutoff_probes", static_cast<std::uint64_t>(cutoff_probes));
    json.kv("max_factor_delta", max_delta);
    json.kv("factors_agree", agree);
    json.end_object();

    std::printf("  sensitivity: legacy %.3fs, fast %.3fs (%.1fx), "
                "partitioned fast %.3fs, max |Δs*| = %.2e%s\n",
                legacy_wall, fast_wall,
                fast_wall > 0.0 ? legacy_wall / fast_wall : 0.0, part_wall,
                max_delta, agree ? "" : "  DISAGREE");
    all_deterministic = all_deterministic && agree;
  }

  // Admission latency: request-to-verdict time of the online mode-change
  // controller over seeded admit/evict/resize streams, at three tiers —
  // incremental (snapshots + warm seed, the default), warm-only
  // (incremental off), and the independent cold re-analysis of every
  // proposal. The wall times are informational; `verdicts_agree` (the
  // incremental tier must be bit-identical to cold) is folded into the
  // exit gate — again a value gate, never a time gate.
  {
    const int admission_streams = 3;
    const int admission_steps = 12;
    double incremental_wall = 0.0, warm_wall = 0.0, cold_wall = 0.0;
    std::size_t requests = 0, committed = 0, rejected = 0;
    std::size_t warm_seeded = 0, warm_hits = 0, verified = 0;
    std::size_t incremental_hits = 0, incremental_prefix = 0;
    bool agree = true;

    exec::ModeChangeConfig config;  // warm + incremental: the default mode
    config.analyzer = "global-limited";
    config.cores = 8;
    exec::ModeChangeConfig warm_only = config;
    warm_only.incremental = false;
    for (int k = 0; k < admission_streams; ++k) {
      exp::ElasticScenarioParams params;
      params.steps = admission_steps;
      const auto stream = exp::make_elastic_scenario(
          params, seed * 7000003 + static_cast<std::uint64_t>(k));
      const exp::ElasticReplay replay = exp::replay_elastic(
          stream, config, /*pool=*/nullptr, /*verify_cold=*/true);
      requests += stream.size();
      committed += replay.committed;
      rejected += replay.rejected;
      incremental_hits += replay.incremental_hits;
      incremental_prefix += replay.incremental_prefix;
      verified += replay.verified;
      incremental_wall += replay.warm_wall_s;
      cold_wall += replay.cold_wall_s;
      agree = agree && replay.verdicts_agree;

      // Warm-only tier: same stream, incremental disabled; its verdicts
      // were already proven identical (warm == cold property), so skip the
      // cold comparison and just take the in-controller wall.
      const exp::ElasticReplay warm_replay = exp::replay_elastic(
          stream, warm_only, /*pool=*/nullptr, /*verify_cold=*/false);
      warm_seeded += warm_replay.warm_seeded;
      warm_hits += warm_replay.warm_hits;
      warm_wall += warm_replay.warm_wall_s;
    }

    json.key("admission");
    json.begin_object();
    json.kv("streams", static_cast<std::uint64_t>(admission_streams));
    json.kv("requests", static_cast<std::uint64_t>(requests));
    json.kv("committed", static_cast<std::uint64_t>(committed));
    json.kv("rejected", static_cast<std::uint64_t>(rejected));
    json.kv("warm_seeded", static_cast<std::uint64_t>(warm_seeded));
    json.kv("warm_hits", static_cast<std::uint64_t>(warm_hits));
    json.kv("incremental_hits", static_cast<std::uint64_t>(incremental_hits));
    json.kv("incremental_prefix",
            static_cast<std::uint64_t>(incremental_prefix));
    json.kv("verified", static_cast<std::uint64_t>(verified));
    json.kv("incremental_wall_s", incremental_wall);
    json.kv("warm_wall_s", warm_wall);
    json.kv("cold_wall_s", cold_wall);
    json.kv("warm_speedup", warm_wall > 0.0 ? cold_wall / warm_wall : 0.0);
    json.kv("incremental_speedup",
            incremental_wall > 0.0 ? cold_wall / incremental_wall : 0.0);
    json.kv("verdicts_agree", agree);
    json.end_object();

    std::printf("  admission: %zu requests (%zu committed, %zu rejected), "
                "incremental %.3fs / warm %.3fs / cold %.3fs, "
                "%zu verdict copies%s\n",
                requests, committed, rejected, incremental_wall, warm_wall,
                cold_wall, incremental_hits, agree ? "" : "  DISAGREE");
    all_deterministic = all_deterministic && agree;
  }

  json.kv("deterministic_all", all_deterministic);
  json.kv("certified_total", static_cast<std::uint64_t>(total_certified));
  json.kv("cert_failures_total",
          static_cast<std::uint64_t>(total_cert_failures));
  json.end_object();
  out << "\n";
  out.close();

  if (certify_sample > 0)
    std::printf("  certify: %zu certificates checked, %zu rejected\n",
                total_certified, total_cert_failures);
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_deterministic) {
    std::fprintf(stderr,
                 "perf_sweep: DETERMINISM FAILURE — results differ across "
                 "thread counts\n");
    return 1;
  }
  if (total_cert_failures > 0) {
    std::fprintf(stderr,
                 "perf_sweep: CERTIFICATION FAILURE — %zu certificate(s) "
                 "rejected by the independent checker\n",
                 total_cert_failures);
    return 1;
  }
  return 0;
}
