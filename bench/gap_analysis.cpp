// Pessimism-gap study: sufficient analysis vs simulation-based necessary
// condition.
//
// For every generated task set three verdicts are compared per scheduler:
//   accept(analysis)  <=  accept(simulation)  <=  feasible (unknown)
// The spread between the analysis-acceptance ratio and the simulation-
// survival ratio brackets how much schedulability the sufficient tests of
// Section 4 leave on the table (an upper bound on their pessimism, since
// the simulated synchronous scenario is necessary but not exact).
#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/rta_context.h"
#include "bench_common.h"
#include "exp/necessity.h"
#include "exp/schedulability.h"
#include "gen/taskset_generator.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args = bench::parse_args(
      argc, argv, {"m", "n", "u-list", "csv", "global-analyzer", "part-analyzer"});
  const bench::CommonFlags flags = bench::common_flags(args, 200);
  const auto m = static_cast<std::size_t>(args.get_int("m", 8));
  const auto n = static_cast<std::size_t>(args.get_int("n", 4));
  const auto u_percent = args.get_int_list("u-list", {10, 20, 30, 40, 50, 60});
  const int trials = flags.trials;
  const std::uint64_t seed = flags.seed;
  const int threads = flags.threads;
  // The sufficient tests under study, selectable by registry name.
  const analysis::Analyzer& global_a = analysis::get_analyzer(
      args.get_string("global-analyzer", "global-limited"));
  const analysis::Analyzer& part_a = analysis::get_analyzer(
      args.get_string("part-analyzer", "partitioned-proposed"));

  std::printf("Pessimism gap: analysis (sufficient) vs simulation (necessary) "
              "[m=%zu n=%zu trials=%d threads=%d]\n",
              m, n, trials, threads);
  std::printf("%-6s | %-12s %-12s | %-12s %-12s\n", "U/m", "glob-analysis",
              "glob-sim", "part-analysis", "part-sim");

  util::CsvWriter csv(args.get_string("csv", "gap_analysis.csv"),
                      {"u_frac", "global_analysis", "global_sim",
                       "partitioned_analysis", "partitioned_sim"});

  exp::ExperimentEngine engine(threads);
  for (std::int64_t u_pct : u_percent) {
    gen::TaskSetParams params;
    params.cores = m;
    params.task_count = n;
    params.total_utilization =
        static_cast<double>(u_pct) / 100.0 * static_cast<double>(m);
    const util::Rng rng(seed * 1000003 + static_cast<std::uint64_t>(u_pct));

    int glob_analysis = 0;
    int glob_sim = 0;
    int part_analysis = 0;
    int part_sim = 0;
    struct TrialVerdicts {
      bool glob_analysis = false, glob_sim = false;
      bool part_analysis = false, part_sim = false;
    };
    engine.map_trials(
        static_cast<std::size_t>(trials), rng,
        [&](std::size_t /*trial*/, util::Rng& arng) {
          const model::TaskSet ts = gen::generate_task_set(params, arng);
          TrialVerdicts v;

          analysis::RtaContext ctx(ts);
          v.glob_analysis = global_a.analyze(ts, ctx).schedulable;
          v.glob_sim =
              exp::passes_simulation(ts, exp::SimPolicy::kGlobal, std::nullopt);

          const auto alg1 = part_a.make_partition(ts);
          if (alg1.success()) {
            analysis::AnalyzerOptions opts;
            opts.partition = &*alg1.partition;
            v.part_analysis = part_a.analyze(ts, ctx, opts).schedulable;
            v.part_sim = exp::passes_simulation(ts, exp::SimPolicy::kPartitioned,
                                                *alg1.partition);
          }
          return v;
        },
        [&](std::size_t /*trial*/, const TrialVerdicts& v) {
          glob_analysis += v.glob_analysis;
          glob_sim += v.glob_sim;
          part_analysis += v.part_analysis;
          part_sim += v.part_sim;
        });
    const double d = trials;
    std::printf("%-6.2f | %-12.3f %-12.3f | %-12.3f %-12.3f\n",
                static_cast<double>(u_pct) / 100.0, glob_analysis / d,
                glob_sim / d, part_analysis / d, part_sim / d);
    csv.row_values(static_cast<double>(u_pct) / 100.0, glob_analysis / d,
                   glob_sim / d, part_analysis / d, part_sim / d);
  }
  return 0;
}
