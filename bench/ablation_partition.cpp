// Ablation B: design choices inside the partitioned arm —
//  (1) Algorithm 1 tie-break: worst-fit (the paper's choice) vs first-fit;
//  (2) Algorithm-1 failure rate vs RTA rejections (where schedulability is
//      actually lost as the blocking window widens);
//  (3) randomized restarts of Algorithm 1 (the paper's "improved
//      partitioning algorithms" future work) on top of the worst-fit run.
//
// Sweeps b̄ (number of dangerous concurrent BF nodes) at m = 8, mirroring
// the Figure 2(b) configuration without the baseline filter.
#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/partition.h"
#include "analysis/rta_context.h"
#include "bench_common.h"
#include "exp/schedulability.h"
#include "gen/taskset_generator.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args = bench::parse_args(argc, argv, {"m", "n", "u", "csv"});
  const bench::CommonFlags flags = bench::common_flags(args, 300);
  const auto m = static_cast<std::size_t>(args.get_int("m", 8));
  const auto n = static_cast<std::size_t>(args.get_int("n", 6));
  const double u = args.get_double("u", 0.15 * static_cast<double>(m));
  const int trials = flags.trials;
  const std::uint64_t seed = flags.seed;
  const int threads = flags.threads;
  // All candidate partitions are judged by the registry's proposed
  // configuration (segment RTA + Lemma 3); only the partitioner varies.
  const analysis::Analyzer& proposed =
      analysis::get_analyzer("partitioned-proposed");

  std::printf("Ablation B: Algorithm 1 tie-break & failure modes "
              "[m=%zu n=%zu U=%.2f trials=%d threads=%d]\n",
              m, n, u, trials, threads);
  std::printf("%-6s | %-10s %-10s %-10s | %-12s %-12s\n", "bbar", "wf-sched",
              "ff-sched", "rand-sched", "alg1-fail", "rta-reject");

  util::CsvWriter csv(args.get_string("csv", "ablation_partition.csv"),
                      {"bbar", "worstfit_sched", "firstfit_sched",
                       "randomized_sched", "alg1_fail", "rta_reject"});

  exp::ExperimentEngine engine(threads);
  for (std::size_t bbar = 0; bbar < m; ++bbar) {
    gen::TaskSetParams params;
    params.cores = m;
    params.task_count = n;
    params.total_utilization = u;
    params.nfj.min_branches = 3;
    params.nfj.max_branches = 5;
    params.blocking_window = gen::BlockingWindow{bbar, bbar};
    const util::Rng rng(seed * 1000003 + bbar);

    int wf_sched = 0;
    int ff_sched = 0;
    int rand_sched = 0;
    int alg1_fail = 0;
    int rta_reject = 0;
    int done = 0;
    struct AttemptOutcome {
      bool generated = false;
      bool wf_success = false, wf_sched = false;
      bool ff_sched = false, rand_sched = false;
    };
    engine.run_attempts(
        static_cast<std::size_t>(trials),
        static_cast<std::size_t>(trials) * 200, rng,
        [&](std::size_t /*attempt*/, util::Rng& arng) {
          AttemptOutcome out;
          model::TaskSet ts(m);
          try {
            ts = gen::generate_task_set(params, arng);
          } catch (const gen::GenerationError&) {
            return out;
          }
          out.generated = true;
          // One context per trial; each candidate partition is analyzed by
          // the registry's proposed analyzer under an explicit partition.
          analysis::RtaContext ctx(ts);
          const auto judge = [&](const analysis::PartitionResult& pr) {
            if (!pr.success()) return false;
            analysis::AnalyzerOptions opts;
            opts.partition = &*pr.partition;
            return proposed.analyze(ts, ctx, opts).schedulable;
          };
          const auto wf =
              analysis::partition_algorithm1(ts, analysis::TieBreak::kWorstFit);
          const auto ff =
              analysis::partition_algorithm1(ts, analysis::TieBreak::kFirstFit);
          out.wf_success = wf.success();
          out.wf_sched = judge(wf);
          out.ff_sched = judge(ff);
          // The restart stream forks off this attempt's own RNG, so the
          // randomized column is as thread-count-invariant as the rest.
          util::Rng restart_rng = arng.fork();
          const auto rnd =
              analysis::partition_algorithm1_randomized(ts, restart_rng, 16);
          out.rand_sched = judge(rnd);
          return out;
        },
        [&](std::size_t /*attempt*/, const AttemptOutcome& out) {
          if (!out.generated) return false;
          ++done;
          if (!out.wf_success) {
            ++alg1_fail;
          } else if (out.wf_sched) {
            ++wf_sched;
          } else {
            ++rta_reject;
          }
          ff_sched += out.ff_sched;
          rand_sched += out.rand_sched;
          return true;
        });
    const double d = std::max(done, 1);
    std::printf("%-6zu | %-10.3f %-10.3f %-10.3f | %-12.3f %-12.3f%s\n", bbar,
                wf_sched / d, ff_sched / d, rand_sched / d, alg1_fail / d,
                rta_reject / d, done < trials ? "  [incomplete]" : "");
    csv.row_values(bbar, wf_sched / d, ff_sched / d, rand_sched / d,
                   alg1_fail / d, rta_reject / d);
  }
  return 0;
}
