// Ablation B: design choices inside the partitioned arm —
//  (1) Algorithm 1 tie-break: worst-fit (the paper's choice) vs first-fit;
//  (2) Algorithm-1 failure rate vs RTA rejections (where schedulability is
//      actually lost as the blocking window widens);
//  (3) randomized restarts of Algorithm 1 (the paper's "improved
//      partitioning algorithms" future work) on top of the worst-fit run.
//
// Sweeps b̄ (number of dangerous concurrent BF nodes) at m = 8, mirroring
// the Figure 2(b) configuration without the baseline filter.
#include <cstdio>

#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "gen/taskset_generator.h"
#include "util/args.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args(argc, argv, {"m", "n", "u", "trials", "seed", "csv"});
  const auto m = static_cast<std::size_t>(args.get_int("m", 8));
  const auto n = static_cast<std::size_t>(args.get_int("n", 6));
  const double u = args.get_double("u", 0.15 * static_cast<double>(m));
  const int trials = static_cast<int>(args.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("Ablation B: Algorithm 1 tie-break & failure modes "
              "[m=%zu n=%zu U=%.2f trials=%d]\n",
              m, n, u, trials);
  std::printf("%-6s | %-10s %-10s %-10s | %-12s %-12s\n", "bbar", "wf-sched",
              "ff-sched", "rand-sched", "alg1-fail", "rta-reject");

  util::CsvWriter csv(args.get_string("csv", "ablation_partition.csv"),
                      {"bbar", "worstfit_sched", "firstfit_sched",
                       "randomized_sched", "alg1_fail", "rta_reject"});

  for (std::size_t bbar = 0; bbar < m; ++bbar) {
    gen::TaskSetParams params;
    params.cores = m;
    params.task_count = n;
    params.total_utilization = u;
    params.nfj.min_branches = 3;
    params.nfj.max_branches = 5;
    params.blocking_window = gen::BlockingWindow{bbar, bbar};
    util::Rng rng(seed * 1000003 + bbar);

    int wf_sched = 0;
    int ff_sched = 0;
    int rand_sched = 0;
    int alg1_fail = 0;
    int rta_reject = 0;
    int done = 0;
    int attempts = 0;
    while (done < trials && attempts < trials * 200) {
      ++attempts;
      model::TaskSet ts(m);
      try {
        ts = gen::generate_task_set(params, rng);
      } catch (const gen::GenerationError&) {
        continue;
      }
      ++done;
      const auto wf = analysis::partition_algorithm1(ts, analysis::TieBreak::kWorstFit);
      const auto ff = analysis::partition_algorithm1(ts, analysis::TieBreak::kFirstFit);
      if (!wf.success()) {
        ++alg1_fail;
      } else {
        if (analysis::analyze_partitioned(ts, *wf.partition).schedulable) {
          ++wf_sched;
        } else {
          ++rta_reject;
        }
      }
      if (ff.success() &&
          analysis::analyze_partitioned(ts, *ff.partition).schedulable)
        ++ff_sched;
      util::Rng restart_rng = rng.fork();
      const auto rnd =
          analysis::partition_algorithm1_randomized(ts, restart_rng, 16);
      if (rnd.success() &&
          analysis::analyze_partitioned(ts, *rnd.partition).schedulable)
        ++rand_sched;
    }
    const double d = std::max(done, 1);
    std::printf("%-6zu | %-10.3f %-10.3f %-10.3f | %-12.3f %-12.3f%s\n", bbar,
                wf_sched / d, ff_sched / d, rand_sched / d, alg1_fail / d,
                rta_reject / d, done < trials ? "  [incomplete]" : "");
    csv.row_values(bbar, wf_sched / d, ff_sched / d, rand_sched / d,
                   alg1_fail / d, rta_reject / d);
  }
  return 0;
}
