// Figure 2 (a)/(b): schedulability ratio as the maximum available
// concurrency l_max varies, m = 8.
//
// Generation enforces b̄(τ) = m − l_max for every task, pinning the lower
// bound on available concurrency to exactly l_max (Section 5). Task sets
// that the *baseline* test rejects are discarded and regenerated, so the
// baseline curve is 1.0 by construction and the proposed curve isolates the
// schedulability lost to reduced concurrency:
//   (a) global:      Melani et al. [14]  vs  Section 4.1,
//   (b) partitioned: worst-fit + [10]    vs  Algorithm 1 + [10] + Lemma 3.
//
// The compared tests come from the analyzer registry; override either arm
// with --global-pair/--part-pair "baseline,proposed" registry names (see
// --list-analyzers).
#include <cstdio>

#include "bench_common.h"
#include "exp/report.h"
#include "exp/schedulability.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args = bench::parse_args(
      argc, argv,
      {"m", "n", "u-global", "u-part", "lmax", "csv", "branches-min",
       "branches-max", "global-pair", "part-pair"});
  const bench::CommonFlags flags = bench::common_flags(args);
  const auto m = static_cast<std::size_t>(args.get_int("m", 8));
  const auto n = static_cast<std::size_t>(args.get_int("n", 6));
  // The two arms run at different target utilizations: the partitioned
  // segment-based RTA saturates earlier than the global bound (see
  // EXPERIMENTS.md), so each arm is exercised in its sensitive region.
  const double u_global = args.get_double("u-global", 0.45 * static_cast<double>(m));
  const double u_part = args.get_double("u-part", 0.175 * static_cast<double>(m));
  const exp::AnalyzerPair global_pair = bench::parse_pair(
      args.get_string("global-pair", ""), exp::Scheduler::kGlobal);
  const exp::AnalyzerPair part_pair = bench::parse_pair(
      args.get_string("part-pair", ""), exp::Scheduler::kPartitioned);
  std::vector<std::int64_t> lmax_default;
  for (std::int64_t l = 1; l <= static_cast<std::int64_t>(m); ++l)
    lmax_default.push_back(l);
  const auto lmax_values = args.get_int_list("lmax", lmax_default);

  std::printf("Figure 2 (a)/(b): schedulability vs l_max  [m=%zu n=%zu "
              "U_glob=%.2f U_part=%.2f trials=%d seed=%llu threads=%d]\n",
              m, n, u_global, u_part, flags.trials,
              static_cast<unsigned long long>(flags.seed), flags.threads);
  std::printf("  global: %s vs %s   partitioned: %s vs %s\n",
              std::string(global_pair.baseline->name()).c_str(),
              std::string(global_pair.proposed->name()).c_str(),
              std::string(part_pair.baseline->name()).c_str(),
              std::string(part_pair.proposed->name()).c_str());

  exp::ExperimentEngine engine(flags.threads);
  std::vector<exp::SweepRow> rows;
  for (std::int64_t lmax : lmax_values) {
    exp::PointConfig config;
    config.gen.cores = m;
    config.gen.task_count = n;
    config.gen.nfj.min_branches =
        static_cast<int>(args.get_int("branches-min", 3));
    config.gen.nfj.max_branches =
        static_cast<int>(args.get_int("branches-max", 5));
    const auto bf = static_cast<std::size_t>(static_cast<std::int64_t>(m) - lmax);
    config.gen.blocking_window = gen::BlockingWindow{bf, bf};
    config.filter_baseline = true;
    config.trials = flags.trials;
    config.max_attempts = flags.trials * 400;

    exp::SweepRow row;
    row.x = static_cast<double>(lmax);
    {
      config.gen.total_utilization = u_global;
      const util::Rng rng(flags.seed * 1000003 + static_cast<std::uint64_t>(lmax));
      row.global = engine.evaluate_point(global_pair, config, rng);
    }
    {
      config.gen.total_utilization = u_part;
      const util::Rng rng(flags.seed * 2000003 + static_cast<std::uint64_t>(lmax));
      row.partitioned = engine.evaluate_point(part_pair, config, rng);
    }
    rows.push_back(row);
    std::printf("  l_max=%-3lld global=%.3f partitioned=%.3f\n",
                static_cast<long long>(lmax), row.global.proposed_ratio(),
                row.partitioned.proposed_ratio());
  }

  exp::print_sweep("Figure 2(a)/(b): schedulability ratio vs l_max (m=8)",
                   "l_max", rows);
  exp::write_sweep_csv(args.get_string("csv", "fig2_lmax.csv"), "l_max", rows);
  return 0;
}
