// Figure 2 (a)/(b): schedulability ratio as the maximum available
// concurrency l_max varies, m = 8.
//
// Generation enforces b̄(τ) = m − l_max for every task, pinning the lower
// bound on available concurrency to exactly l_max (Section 5). Task sets
// that the *baseline* test rejects are discarded and regenerated, so the
// baseline curve is 1.0 by construction and the proposed curve isolates the
// schedulability lost to reduced concurrency:
//   (a) global:      Melani et al. [14]  vs  Section 4.1,
//   (b) partitioned: worst-fit + [10]    vs  Algorithm 1 + [10] + Lemma 3.
#include <cstdio>

#include "exp/report.h"
#include "exp/schedulability.h"
#include "util/args.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args(argc, argv,
                        {"m", "n", "u-global", "u-part", "trials", "seed",
                         "lmax", "csv", "branches-min", "branches-max", "threads"});
  const auto m = static_cast<std::size_t>(args.get_int("m", 8));
  const auto n = static_cast<std::size_t>(args.get_int("n", 6));
  // --threads: worker count of the experiment engine (0 = all hardware
  // threads). Results are bit-identical for every value; only wall time
  // changes.
  const int threads = static_cast<int>(args.get_int("threads", 1));
  // The two arms run at different target utilizations: the partitioned
  // segment-based RTA saturates earlier than the global bound (see
  // EXPERIMENTS.md), so each arm is exercised in its sensitive region.
  const double u_global = args.get_double("u-global", 0.45 * static_cast<double>(m));
  const double u_part = args.get_double("u-part", 0.175 * static_cast<double>(m));
  const int trials = static_cast<int>(args.get_int("trials", 500));
  const std::uint64_t seed = args.get_uint64("seed", 1);
  std::vector<std::int64_t> lmax_default;
  for (std::int64_t l = 1; l <= static_cast<std::int64_t>(m); ++l)
    lmax_default.push_back(l);
  const auto lmax_values = args.get_int_list("lmax", lmax_default);

  std::printf("Figure 2 (a)/(b): schedulability vs l_max  [m=%zu n=%zu "
              "U_glob=%.2f U_part=%.2f trials=%d seed=%llu threads=%d]\n",
              m, n, u_global, u_part, trials,
              static_cast<unsigned long long>(seed), threads);

  exp::ExperimentEngine engine(threads);
  std::vector<exp::SweepRow> rows;
  for (std::int64_t lmax : lmax_values) {
    exp::PointConfig config;
    config.gen.cores = m;
    config.gen.task_count = n;
    config.gen.nfj.min_branches =
        static_cast<int>(args.get_int("branches-min", 3));
    config.gen.nfj.max_branches =
        static_cast<int>(args.get_int("branches-max", 5));
    const auto bf = static_cast<std::size_t>(static_cast<std::int64_t>(m) - lmax);
    config.gen.blocking_window = gen::BlockingWindow{bf, bf};
    config.filter_baseline = true;
    config.trials = trials;
    config.max_attempts = trials * 400;

    exp::SweepRow row;
    row.x = static_cast<double>(lmax);
    {
      config.gen.total_utilization = u_global;
      const util::Rng rng(seed * 1000003 + static_cast<std::uint64_t>(lmax));
      row.global = engine.evaluate_point(exp::Scheduler::kGlobal, config, rng);
    }
    {
      config.gen.total_utilization = u_part;
      const util::Rng rng(seed * 2000003 + static_cast<std::uint64_t>(lmax));
      row.partitioned =
          engine.evaluate_point(exp::Scheduler::kPartitioned, config, rng);
    }
    rows.push_back(row);
    std::printf("  l_max=%-3lld global=%.3f partitioned=%.3f\n",
                static_cast<long long>(lmax), row.global.proposed_ratio(),
                row.partitioned.proposed_ratio());
  }

  exp::print_sweep("Figure 2(a)/(b): schedulability ratio vs l_max (m=8)",
                   "l_max", rows);
  exp::write_sweep_csv(args.get_string("csv", "fig2_lmax.csv"), "l_max", rows);
  return 0;
}
