// Ablation C: the library's extensions beyond the paper.
//
//  (1) Concurrency bound: the paper's l̄ = m − b̄ (Section 3.1) versus the
//      antichain refinement l̄' = m − maxAntichain(BF) (the paper's
//      future-work direction, analysis/antichain.h) inside the global test.
//  (2) Federated scheduling: classic [13] versus the limited-concurrency
//      adaptation (analysis/federated.h).
//  (3) Partitioned composition: SPLIT per-segment versus holistic
//      once-per-core interference charging (analysis/partitioned_rta.h),
//      both on worst-fit partitions in oblivious (baseline) mode.
//  (4) Priority assignment: deadline-monotonic (the benches' default)
//      versus Audsley's OPA over the deadline-jitter variant of the
//      limited-concurrency test (analysis/priority_assignment.h).
//
// Sweeps n at m = 8 with the Figure 2(e) style generation.
#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/priority_assignment.h"
#include "analysis/rta_context.h"
#include "bench_common.h"
#include "exp/schedulability.h"
#include "gen/taskset_generator.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args =
      bench::parse_args(argc, argv, {"m", "n", "u-global", "u-part", "csv"});
  const bench::CommonFlags flags = bench::common_flags(args, 300);
  const auto m = static_cast<std::size_t>(args.get_int("m", 8));
  const auto ns = args.get_int_list("n", {2, 4, 6, 8, 10, 12, 14, 16});
  const double u_global = args.get_double("u-global", 0.3 * static_cast<double>(m));
  const double u_part = args.get_double("u-part", 0.15 * static_cast<double>(m));
  const int trials = flags.trials;
  const std::uint64_t seed = flags.seed;
  const int threads = flags.threads;

  // Every extension variant is a registered analyzer (the OPA column keeps
  // its free-function priority-assignment step: priority search is not an
  // analysis, its verification is).
  const analysis::Analyzer& lim_bbar_a = analysis::get_analyzer("global-limited");
  const analysis::Analyzer& lim_anti_a =
      analysis::get_analyzer("global-limited-antichain");
  const analysis::Analyzer& fed_a = analysis::get_analyzer("federated");
  const analysis::Analyzer& fed_lim_a = analysis::get_analyzer("federated-limited");
  const analysis::Analyzer& part_split_a =
      analysis::get_analyzer("partitioned-baseline");
  const analysis::Analyzer& part_hol_a =
      analysis::get_analyzer("partitioned-baseline-holistic");

  std::printf("Ablation C: extension variants [m=%zu U_glob=%.2f U_part=%.2f "
              "trials=%d threads=%d]\n",
              m, u_global, u_part, trials, threads);
  std::printf("%-4s | %-9s %-9s %-9s | %-9s %-9s | %-9s %-9s\n", "n",
              "lim-bbar", "lim-anti", "lim-opa", "fed", "fed-lim",
              "part-split", "part-hol");

  util::CsvWriter csv(args.get_string("csv", "ablation_extensions.csv"),
                      {"n", "limited_bbar", "limited_antichain", "limited_opa",
                       "federated", "federated_limited", "partitioned_split",
                       "partitioned_holistic"});

  exp::ExperimentEngine engine(threads);
  for (std::int64_t n : ns) {
    gen::TaskSetParams params;
    params.cores = m;
    params.task_count = static_cast<std::size_t>(n);
    params.nfj.min_branches = 5;
    params.nfj.max_branches = 7;
    const util::Rng rng(seed * 1000003 + static_cast<std::uint64_t>(n));

    int lim_bbar = 0;
    int lim_anti = 0;
    int lim_opa = 0;
    int fed = 0;
    int fed_lim = 0;
    int part_split = 0;
    int part_hol = 0;
    struct TrialOutcome {
      bool lim_bbar = false, lim_anti = false, lim_opa = false;
      bool fed = false, fed_lim = false;
      bool part_split = false, part_hol = false;
    };
    engine.map_trials(
        static_cast<std::size_t>(trials), rng,
        [&](std::size_t /*trial*/, util::Rng& arng) {
          TrialOutcome out;
          gen::TaskSetParams p = params;  // local copy: eval runs concurrently
          p.total_utilization = u_global;
          const model::TaskSet ts = gen::generate_task_set(p, arng);

          // One context per generated set; the global and federated
          // variants share its structural caches.
          analysis::RtaContext ctx(ts);
          out.lim_bbar = lim_bbar_a.analyze(ts, ctx).schedulable;
          out.lim_anti = lim_anti_a.analyze(ts, ctx).schedulable;

          // OPA over the deadline-jitter variant of the b̄-based limited
          // test, verified with the original response-jitter analysis.
          analysis::AudsleyOptions audsley;
          audsley.base.limited_concurrency = true;
          if (const auto opa = analysis::assign_priorities_audsley(ts, audsley))
            out.lim_opa = lim_bbar_a.analyze(*opa).schedulable;

          out.fed = fed_a.analyze(ts, ctx).schedulable;
          out.fed_lim = fed_lim_a.analyze(ts, ctx).schedulable;

          p.total_utilization = u_part;
          const model::TaskSet tsp = gen::generate_task_set(p, arng);
          const auto wf = part_split_a.make_partition(tsp);
          if (wf.success()) {
            analysis::RtaContext pctx(tsp);
            analysis::AnalyzerOptions opts;
            opts.partition = &*wf.partition;
            out.part_split = part_split_a.analyze(tsp, pctx, opts).schedulable;
            out.part_hol = part_hol_a.analyze(tsp, pctx, opts).schedulable;
          }
          return out;
        },
        [&](std::size_t /*trial*/, const TrialOutcome& out) {
          lim_bbar += out.lim_bbar;
          lim_anti += out.lim_anti;
          lim_opa += out.lim_opa;
          fed += out.fed;
          fed_lim += out.fed_lim;
          part_split += out.part_split;
          part_hol += out.part_hol;
        });
    const double d = trials;
    std::printf("%-4lld | %-9.3f %-9.3f %-9.3f | %-9.3f %-9.3f | %-9.3f "
                "%-9.3f\n",
                static_cast<long long>(n), lim_bbar / d, lim_anti / d,
                lim_opa / d, fed / d, fed_lim / d, part_split / d,
                part_hol / d);
    csv.row_values(n, lim_bbar / d, lim_anti / d, lim_opa / d, fed / d,
                   fed_lim / d, part_split / d, part_hol / d);
  }
  return 0;
}
