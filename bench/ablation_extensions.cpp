// Ablation C: the library's extensions beyond the paper.
//
//  (1) Concurrency bound: the paper's l̄ = m − b̄ (Section 3.1) versus the
//      antichain refinement l̄' = m − maxAntichain(BF) (the paper's
//      future-work direction, analysis/antichain.h) inside the global test.
//  (2) Federated scheduling: classic [13] versus the limited-concurrency
//      adaptation (analysis/federated.h).
//  (3) Partitioned composition: SPLIT per-segment versus holistic
//      once-per-core interference charging (analysis/partitioned_rta.h),
//      both on worst-fit partitions in oblivious (baseline) mode.
//  (4) Priority assignment: deadline-monotonic (the benches' default)
//      versus Audsley's OPA over the deadline-jitter variant of the
//      limited-concurrency test (analysis/priority_assignment.h).
//
// Sweeps n at m = 8 with the Figure 2(e) style generation.
#include <cstdio>

#include "analysis/federated.h"
#include "analysis/global_rta.h"
#include "analysis/priority_assignment.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "gen/taskset_generator.h"
#include "util/args.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args(argc, argv,
                        {"m", "n", "u-global", "u-part", "trials", "seed", "csv"});
  const auto m = static_cast<std::size_t>(args.get_int("m", 8));
  const auto ns = args.get_int_list("n", {2, 4, 6, 8, 10, 12, 14, 16});
  const double u_global = args.get_double("u-global", 0.3 * static_cast<double>(m));
  const double u_part = args.get_double("u-part", 0.15 * static_cast<double>(m));
  const int trials = static_cast<int>(args.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("Ablation C: extension variants [m=%zu U_glob=%.2f U_part=%.2f "
              "trials=%d]\n",
              m, u_global, u_part, trials);
  std::printf("%-4s | %-9s %-9s %-9s | %-9s %-9s | %-9s %-9s\n", "n",
              "lim-bbar", "lim-anti", "lim-opa", "fed", "fed-lim",
              "part-split", "part-hol");

  util::CsvWriter csv(args.get_string("csv", "ablation_extensions.csv"),
                      {"n", "limited_bbar", "limited_antichain", "limited_opa",
                       "federated", "federated_limited", "partitioned_split",
                       "partitioned_holistic"});

  for (std::int64_t n : ns) {
    gen::TaskSetParams params;
    params.cores = m;
    params.task_count = static_cast<std::size_t>(n);
    params.nfj.min_branches = 5;
    params.nfj.max_branches = 7;
    util::Rng rng(seed * 1000003 + static_cast<std::uint64_t>(n));

    int lim_bbar = 0;
    int lim_anti = 0;
    int lim_opa = 0;
    int fed = 0;
    int fed_lim = 0;
    int part_split = 0;
    int part_hol = 0;
    for (int t = 0; t < trials; ++t) {
      params.total_utilization = u_global;
      const model::TaskSet ts = gen::generate_task_set(params, rng);

      analysis::GlobalRtaOptions lim;
      lim.limited_concurrency = true;
      if (analysis::analyze_global(ts, lim).schedulable) ++lim_bbar;
      lim.concurrency = analysis::ConcurrencyBound::kMaxAntichain;
      if (analysis::analyze_global(ts, lim).schedulable) ++lim_anti;

      // OPA over the deadline-jitter variant of the b̄-based limited test,
      // verified with the original response-jitter analysis.
      analysis::AudsleyOptions audsley;
      audsley.base.limited_concurrency = true;
      if (const auto opa = analysis::assign_priorities_audsley(ts, audsley)) {
        analysis::GlobalRtaOptions verify;
        verify.limited_concurrency = true;
        if (analysis::analyze_global(*opa, verify).schedulable) ++lim_opa;
      }

      if (analysis::analyze_federated(ts).schedulable) ++fed;
      analysis::FederatedOptions fopt;
      fopt.limited_concurrency = true;
      if (analysis::analyze_federated(ts, fopt).schedulable) ++fed_lim;

      params.total_utilization = u_part;
      const model::TaskSet tsp = gen::generate_task_set(params, rng);
      const auto wf = analysis::partition_worst_fit(tsp);
      if (wf.success()) {
        analysis::PartitionedRtaOptions opts;
        opts.require_deadlock_free = false;
        if (analysis::analyze_partitioned(tsp, *wf.partition, opts).schedulable)
          ++part_split;
        opts.bound = analysis::PartitionedBound::kHolisticPath;
        if (analysis::analyze_partitioned(tsp, *wf.partition, opts).schedulable)
          ++part_hol;
      }
    }
    const double d = trials;
    std::printf("%-4lld | %-9.3f %-9.3f %-9.3f | %-9.3f %-9.3f | %-9.3f "
                "%-9.3f\n",
                static_cast<long long>(n), lim_bbar / d, lim_anti / d,
                lim_opa / d, fed / d, fed_lim / d, part_split / d,
                part_hol / d);
    csv.row_values(n, lim_bbar / d, lim_anti / d, lim_opa / d, fed / d,
                   fed_lim / d, part_split / d, part_hol / d);
  }
  return 0;
}
