// Ablation A: inter-task interference bound — the paper's ceil-based
// restatement of [14] versus the refined carry-in bound of Melani et al.
//
// DESIGN.md notes that the DAC'19 paper prints the simpler ceil bound; this
// ablation quantifies how much schedulability the refinement buys under
// both the baseline and the limited-concurrency test, over the Figure 2(e)
// configuration (m = 8, n sweep).
#include <cmath>
#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/rta_context.h"
#include "bench_common.h"
#include "exp/schedulability.h"
#include "gen/taskset_generator.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args = bench::parse_args(argc, argv, {"m", "n", "u", "csv"});
  const bench::CommonFlags flags = bench::common_flags(args, 300);
  const auto m = static_cast<std::size_t>(args.get_int("m", 8));
  const auto ns = args.get_int_list("n", {2, 4, 6, 8, 10, 12, 14, 16});
  const double u = args.get_double("u", 0.4 * static_cast<double>(m));
  const int trials = flags.trials;
  const std::uint64_t seed = flags.seed;
  const int threads = flags.threads;

  // The {baseline, limited} × {ceil, carry-in} cross product, straight from
  // the analyzer registry (order matches the legacy option loops).
  const analysis::Analyzer* variants[4] = {
      &analysis::get_analyzer("global-baseline"),
      &analysis::get_analyzer("global-baseline-carryin"),
      &analysis::get_analyzer("global-limited"),
      &analysis::get_analyzer("global-limited-carryin"),
  };

  std::printf("Ablation A: paper ceil bound vs Melani carry-in bound "
              "[m=%zu U=%.2f trials=%d threads=%d]\n",
              m, u, trials, threads);
  std::printf("%-4s | %-12s %-12s | %-12s %-12s | %-12s\n", "n", "ceil-base",
              "carry-base", "ceil-lim", "carry-lim", "R carry/ceil");

  util::CsvWriter csv(args.get_string("csv", "ablation_interference.csv"),
                      {"n", "ceil_baseline", "carryin_baseline", "ceil_limited",
                       "carryin_limited", "mean_r_ratio"});

  exp::ExperimentEngine engine(threads);
  for (std::int64_t n : ns) {
    gen::TaskSetParams params;
    params.cores = m;
    params.task_count = static_cast<std::size_t>(n);
    params.total_utilization = u;
    const util::Rng rng(seed * 1000003 + static_cast<std::uint64_t>(n));

    int counts[4] = {0, 0, 0, 0};
    double ratio_sum = 0.0;
    std::size_t ratio_count = 0;
    struct TrialOutcome {
      bool schedulable[4] = {false, false, false, false};
      double ratio_sum = 0.0;
      std::size_t ratio_count = 0;
    };
    engine.map_trials(
        static_cast<std::size_t>(trials), rng,
        [&](std::size_t /*trial*/, util::Rng& arng) {
          const model::TaskSet ts = gen::generate_task_set(params, arng);
          TrialOutcome out;
          // One context per trial: the four variants share the structural
          // caches (verdicts are identical with or without sharing).
          analysis::RtaContext ctx(ts);
          analysis::Report results[4];
          for (int k = 0; k < 4; ++k) {
            results[k] = variants[k]->analyze(ts, ctx);
            out.schedulable[k] = results[k].schedulable;
          }
          // Mean per-task response-time improvement of the refined bound
          // (baseline test, finite responses only).
          for (std::size_t i = 0; i < ts.size(); ++i) {
            const double r_ceil = results[0].per_task[i].response_time;
            const double r_carry = results[1].per_task[i].response_time;
            if (std::isfinite(r_ceil) && std::isfinite(r_carry) && r_ceil > 0.0) {
              out.ratio_sum += r_carry / r_ceil;
              ++out.ratio_count;
            }
          }
          return out;
        },
        [&](std::size_t /*trial*/, const TrialOutcome& out) {
          for (int k = 0; k < 4; ++k) counts[k] += out.schedulable[k];
          ratio_sum += out.ratio_sum;
          ratio_count += out.ratio_count;
        });
    const double d = trials;
    const double mean_ratio = ratio_count == 0 ? 1.0 : ratio_sum / ratio_count;
    std::printf("%-4lld | %-12.3f %-12.3f | %-12.3f %-12.3f | %-12.4f\n",
                static_cast<long long>(n), counts[0] / d, counts[1] / d,
                counts[2] / d, counts[3] / d, mean_ratio);
    csv.row_values(n, counts[0] / d, counts[1] / d, counts[2] / d,
                   counts[3] / d, mean_ratio);
  }
  return 0;
}
