// Flag handling shared by the bench drivers.
//
// Every driver accepts the same engine/run plumbing — `--threads`, `--seed`,
// `--trials`, `--list-analyzers` — plus its own figure-specific keys. This
// header keeps that plumbing in one place so the drivers stop copy-pasting
// util::Args boilerplate, and gives them registry-based analyzer selection:
// a comparison driver takes `--global-pair baseline,proposed` /
// `--part-pair baseline,proposed` registry names instead of hard-coding the
// legacy Scheduler enum's two tests.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "exp/schedulability.h"
#include "util/args.h"

namespace rtpool::bench {

/// Keys every driver understands (parse_args appends them).
inline std::vector<std::string> with_common_keys(std::vector<std::string> keys) {
  for (const char* key :
       {"threads", "seed", "trials", "certify-sample", "list-analyzers"})
    keys.emplace_back(key);
  return keys;
}

/// Print the analyzer registry (name + one-line description).
inline void print_analyzer_registry() {
  std::printf("registered analyzers:\n");
  for (const analysis::Analyzer* a : analysis::registered_analyzers())
    std::printf("  %-34s %s\n", std::string(a->name()).c_str(),
                std::string(a->description()).c_str());
}

/// Parse argv against the driver's keys plus the common set. Handles
/// `--list-analyzers` (prints the registry and exits 0) so every driver
/// can enumerate the analysis spine without bespoke code.
inline util::Args parse_args(int argc, const char* const argv[],
                             std::vector<std::string> keys) {
  util::Args args(argc, argv, with_common_keys(std::move(keys)));
  if (args.get_bool("list-analyzers", false)) {
    print_analyzer_registry();
    std::exit(0);
  }
  return args;
}

/// The run-plumbing flags every driver reads.
struct CommonFlags {
  int threads = 1;           ///< Engine workers (0 = all hardware threads).
  std::uint64_t seed = 1;    ///< Root seed (forked per attempt).
  int trials = 500;          ///< Accepted task sets per point.
  /// Certificate spot-checks per point (PointConfig::certify_sample; 0 = off).
  int certify_sample = 0;
};

inline CommonFlags common_flags(const util::Args& args, int default_trials = 500) {
  CommonFlags flags;
  flags.threads = static_cast<int>(args.get_int("threads", 1));
  flags.seed = args.get_uint64("seed", 1);
  flags.trials = static_cast<int>(args.get_int("trials", default_trials));
  flags.certify_sample = static_cast<int>(args.get_int("certify-sample", 0));
  return flags;
}

/// Resolve a `--…-pair` value "baseline,proposed" (two registry names) into
/// an AnalyzerPair; an empty spec yields the scheduler's canonical pair.
/// Throws std::invalid_argument (listing registered names) on unknown
/// analyzers or a malformed spec.
inline exp::AnalyzerPair parse_pair(const std::string& spec,
                                    exp::Scheduler fallback) {
  if (spec.empty()) return exp::analyzers_for(fallback);
  const std::size_t comma = spec.find(',');
  if (comma == std::string::npos || spec.find(',', comma + 1) != std::string::npos)
    throw std::invalid_argument(
        "analyzer pair must be two comma-separated registry names, got '" +
        spec + "'");
  return {&analysis::get_analyzer(spec.substr(0, comma)),
          &analysis::get_analyzer(spec.substr(comma + 1))};
}

}  // namespace rtpool::bench
