// Google-benchmark microbenchmarks of the analysis algorithms: the paper
// quotes O(|V|^3) for computing l̄(τ) and O(|V|^4) for Algorithm 1 — these
// benches measure the real scaling of this implementation (which uses
// bitset closures and is far below those worst cases in practice).
#include <benchmark/benchmark.h>

#include "analysis/concurrency.h"
#include "analysis/global_rta.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "analysis/rta_context.h"
#include "analysis/sensitivity.h"
#include "gen/taskset_generator.h"
#include "sim/engine.h"

namespace {

using namespace rtpool;

/// Generator tuned to produce graphs of roughly `target_nodes` nodes.
model::DagTask make_task(std::size_t target_nodes, std::uint64_t seed) {
  util::Rng rng(seed);
  gen::TaskSetParams params;
  params.cores = 8;
  params.nfj.max_depth = 3;
  params.nfj.max_series = 3;
  params.nfj.min_branches = 3;
  params.nfj.max_branches = 5;
  // Resample until the node count is in the right ballpark.
  for (int attempt = 0; attempt < 10000; ++attempt) {
    model::DagTask t = gen::generate_task(params, 0, 0.5, rng);
    if (t.node_count() >= target_nodes / 2 && t.node_count() <= target_nodes * 2)
      return t;
  }
  throw std::runtime_error("make_task: target size not reachable");
}

model::TaskSet make_set(std::size_t cores, std::size_t tasks, std::uint64_t seed) {
  util::Rng rng(seed);
  gen::TaskSetParams params;
  params.cores = cores;
  params.task_count = tasks;
  params.total_utilization = 0.4 * static_cast<double>(cores);
  return gen::generate_task_set(params, rng);
}

void BM_ReachabilityClosure(benchmark::State& state) {
  const auto task = make_task(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    graph::Reachability reach(task.dag());
    benchmark::DoNotOptimize(reach.size());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(task.node_count()));
}
BENCHMARK(BM_ReachabilityClosure)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_MaxAffectingForks(benchmark::State& state) {
  const auto task = make_task(static_cast<std::size_t>(state.range(0)), 43);
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::max_affecting_forks(task));
  state.SetComplexityN(static_cast<benchmark::IterationCount>(task.node_count()));
}
BENCHMARK(BM_MaxAffectingForks)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_GlobalRtaBaseline(benchmark::State& state) {
  const auto ts = make_set(8, static_cast<std::size_t>(state.range(0)), 44);
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::analyze_global(ts).schedulable);
}
BENCHMARK(BM_GlobalRtaBaseline)->Arg(2)->Arg(8)->Arg(16);

void BM_GlobalRtaLimited(benchmark::State& state) {
  const auto ts = make_set(8, static_cast<std::size_t>(state.range(0)), 44);
  analysis::GlobalRtaOptions opts;
  opts.limited_concurrency = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::analyze_global(ts, opts).schedulable);
}
BENCHMARK(BM_GlobalRtaLimited)->Arg(2)->Arg(8)->Arg(16);

void BM_Algorithm1(benchmark::State& state) {
  const auto ts = make_set(8, static_cast<std::size_t>(state.range(0)), 45);
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::partition_algorithm1(ts).success());
}
BENCHMARK(BM_Algorithm1)->Arg(2)->Arg(8)->Arg(16);

void BM_WorstFit(benchmark::State& state) {
  const auto ts = make_set(8, static_cast<std::size_t>(state.range(0)), 45);
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::partition_worst_fit(ts).success());
}
BENCHMARK(BM_WorstFit)->Arg(2)->Arg(8)->Arg(16);

void BM_PartitionedRta(benchmark::State& state) {
  const auto ts = make_set(8, static_cast<std::size_t>(state.range(0)), 46);
  const auto part = analysis::partition_worst_fit(ts);
  if (!part.success()) {
    state.SkipWithError("worst-fit failed");
    return;
  }
  analysis::PartitionedRtaOptions opts;
  opts.require_deadlock_free = false;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        analysis::analyze_partitioned(ts, *part.partition, opts).schedulable);
}
BENCHMARK(BM_PartitionedRta)->Arg(2)->Arg(8)->Arg(16);

void BM_PartitionedRtaCtx(benchmark::State& state) {
  // Same workload as BM_PartitionedRta, but with a reused RtaContext — the
  // experiment-engine / sensitivity configuration. The gap between the two
  // is the per-call cost the context amortizes (blocking vectors, per-core
  // workloads, Lemma-3 verdicts, priority orders).
  const auto ts = make_set(8, static_cast<std::size_t>(state.range(0)), 46);
  const auto part = analysis::partition_worst_fit(ts);
  if (!part.success()) {
    state.SkipWithError("worst-fit failed");
    return;
  }
  analysis::PartitionedRtaOptions opts;
  opts.require_deadlock_free = false;
  analysis::RtaContext ctx(ts);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        analysis::analyze_partitioned(ts, *part.partition, opts, &ctx)
            .schedulable);
}
BENCHMARK(BM_PartitionedRtaCtx)->Arg(2)->Arg(8)->Arg(16);

void BM_FifoBlockingVector(benchmark::State& state) {
  // The word-parallel bitset kernel on one task (per analyze call the old
  // code paid the naive O(|V|²) equivalent per node instead).
  const auto task = make_task(static_cast<std::size_t>(state.range(0)), 42);
  model::TaskSet ts(8);
  ts.add(task);
  const auto part = analysis::partition_worst_fit(ts);
  if (!part.success()) {
    state.SkipWithError("worst-fit failed");
    return;
  }
  const analysis::NodeAssignment& assignment = part.partition->per_task[0];
  for (auto _ : state)
    benchmark::DoNotOptimize(
        analysis::fifo_blocking_vector(ts.task(0), assignment).size());
  state.SetComplexityN(
      static_cast<benchmark::IterationCount>(ts.task(0).node_count()));
}
BENCHMARK(BM_FifoBlockingVector)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_FifoBlockingNaive(benchmark::State& state) {
  // Contrast: the pre-kernel O(|V|²) double loop (reach.reaches per pair),
  // kept as the reference the property tests compare against.
  const auto task = make_task(static_cast<std::size_t>(state.range(0)), 42);
  model::TaskSet ts(8);
  ts.add(task);
  const auto part = analysis::partition_worst_fit(ts);
  if (!part.success()) {
    state.SkipWithError("worst-fit failed");
    return;
  }
  const auto& thread_of = part.partition->per_task[0].thread_of;
  const model::DagTask& t = ts.task(0);
  const graph::Reachability& reach = t.reachability();
  for (auto _ : state) {
    std::vector<util::Time> blocking(t.node_count(), 0.0);
    for (model::NodeId v = 0; v < t.node_count(); ++v) {
      if (t.type(v) == model::NodeType::BJ) continue;
      util::Time b = 0.0;
      for (model::NodeId u = 0; u < t.node_count(); ++u) {
        if (u == v || thread_of[u] != thread_of[v]) continue;
        if (reach.reaches(u, v) || reach.reaches(v, u)) continue;
        b += t.wcet(u);
      }
      blocking[v] = b;
    }
    benchmark::DoNotOptimize(blocking.data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(t.node_count()));
}
BENCHMARK(BM_FifoBlockingNaive)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_TaskSetViewBuild(benchmark::State& state) {
  // The SoA mirror: flattening a task set's per-node WCETs/types and
  // per-task scalars into the context's arena. reset() + view() per
  // iteration measures the rebuild the engine pays once per trial.
  const auto ts = make_set(8, static_cast<std::size_t>(state.range(0)), 46);
  analysis::RtaContext ctx(ts);
  for (auto _ : state) {
    ctx.reset(ts);
    benchmark::DoNotOptimize(ctx.view().task_count());
  }
}
BENCHMARK(BM_TaskSetViewBuild)->Arg(2)->Arg(8)->Arg(16);

void BM_BindPartitionFlat(benchmark::State& state) {
  // The flat partition-bind kernel: per-core workloads W_{i,p} and FIFO
  // blocking vectors B_v for the whole set, streamed into task-major flat
  // arrays (the placement loop the partitioned RTA consumes).
  const auto ts = make_set(8, static_cast<std::size_t>(state.range(0)), 46);
  const auto part = analysis::partition_worst_fit(ts);
  if (!part.success()) {
    state.SkipWithError("worst-fit failed");
    return;
  }
  analysis::RtaContext ctx(ts);
  for (auto _ : state) {
    ctx.reset(ts);  // drop the binding so bind_partition recomputes
    ctx.bind_partition(*part.partition);
    benchmark::DoNotOptimize(ctx.core_workload(0).data());
  }
}
BENCHMARK(BM_BindPartitionFlat)->Arg(2)->Arg(8)->Arg(16);

void BM_IncrementalReVerdict(benchmark::State& state) {
  // Incremental re-analysis after a single-task WCET change: copy the
  // clean priority-order prefix from the prior run, re-run only the dirty
  // suffix. Contrast with BM_ColdReVerdict (the full fixed-point sweep).
  const auto ts = make_set(8, static_cast<std::size_t>(state.range(0)), 49);
  analysis::GlobalRtaOptions opts;
  opts.limited_concurrency = true;
  analysis::RtaContext prior(ts);
  prior.set_snapshots(true);
  analysis::analyze_global(ts, opts, &prior);

  // Dirty the LOWEST-priority task: the copyable prefix is maximal.
  const std::size_t dirty_task = ts.priority_order().back();
  std::vector<std::optional<std::size_t>> task_map(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) task_map[i] = i;
  std::vector<char> dirty(ts.size(), 0);
  dirty[dirty_task] = 1;

  analysis::RtaContext ctx(ts);
  for (auto _ : state) {
    ctx.reset(ts);
    ctx.begin_incremental(prior, task_map, dirty);
    benchmark::DoNotOptimize(analysis::analyze_global(ts, opts, &ctx).schedulable);
  }
}
BENCHMARK(BM_IncrementalReVerdict)->Arg(2)->Arg(8)->Arg(16);

void BM_ColdReVerdict(benchmark::State& state) {
  // The cold baseline BM_IncrementalReVerdict is measured against (same
  // reused context, no incremental state).
  const auto ts = make_set(8, static_cast<std::size_t>(state.range(0)), 49);
  analysis::GlobalRtaOptions opts;
  opts.limited_concurrency = true;
  analysis::RtaContext ctx(ts);
  for (auto _ : state) {
    ctx.reset(ts);
    benchmark::DoNotOptimize(analysis::analyze_global(ts, opts, &ctx).schedulable);
  }
}
BENCHMARK(BM_ColdReVerdict)->Arg(2)->Arg(8)->Arg(16);

void BM_SensitivityGlobalLegacy(benchmark::State& state) {
  // Generic search: one materialized scaled TaskSet per probe.
  const auto ts = make_set(8, 8, 50);
  analysis::GlobalRtaOptions opts;
  opts.limited_concurrency = true;
  for (auto _ : state) {
    const double s = analysis::critical_scaling_factor(
        ts, [&](const model::TaskSet& set) {
          return analysis::analyze_global(set, opts).schedulable;
        });
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SensitivityGlobalLegacy);

void BM_SensitivityGlobalFast(benchmark::State& state) {
  // Fast path: scaled options + shared context + warm starts + cutoffs.
  const auto ts = make_set(8, 8, 50);
  analysis::GlobalRtaOptions opts;
  opts.limited_concurrency = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::critical_scaling_factor_global(ts, opts).factor);
  }
}
BENCHMARK(BM_SensitivityGlobalFast);

void BM_SensitivityPartitionedFast(benchmark::State& state) {
  const auto ts = make_set(8, 8, 50);
  const auto part = analysis::partition_worst_fit(ts);
  if (!part.success()) {
    state.SkipWithError("worst-fit failed");
    return;
  }
  analysis::PartitionedRtaOptions opts;
  opts.require_deadlock_free = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::critical_scaling_factor_partitioned(ts, *part.partition, opts)
            .factor);
  }
}
BENCHMARK(BM_SensitivityPartitionedFast);

void BM_SimulateGlobal(benchmark::State& state) {
  const auto ts = make_set(4, 3, 47);
  sim::SimConfig cfg;
  cfg.policy = sim::SchedulingPolicy::kGlobal;
  double max_period = 0.0;
  for (const auto& t : ts.tasks()) max_period = std::max(max_period, t.period());
  cfg.horizon = static_cast<double>(state.range(0)) * max_period;
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate(ts, cfg).jobs.size());
}
BENCHMARK(BM_SimulateGlobal)->Arg(2)->Arg(8)->Arg(32);

void BM_TaskSetGeneration(benchmark::State& state) {
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 6;
  params.total_utilization = 3.2;
  util::Rng rng(48);
  for (auto _ : state)
    benchmark::DoNotOptimize(gen::generate_task_set(params, rng).size());
}
BENCHMARK(BM_TaskSetGeneration);

}  // namespace
