// Figure 2 (c)/(d): schedulability ratio as the number of processors m
// varies (free node typing, nothing discarded).
//
// Both tests are shown per scheduler: the reduced-concurrency gap is wide
// for small m — where a few suspended threads exhaust the pool — and nearly
// closes for m >= 8, as the paper reports.
//
// The compared tests come from the analyzer registry; override either arm
// with --global-pair/--part-pair "baseline,proposed" registry names (see
// --list-analyzers).
#include <cstdio>

#include "bench_common.h"
#include "exp/report.h"
#include "exp/schedulability.h"

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args = bench::parse_args(
      argc, argv,
      {"m", "n", "u-frac-global", "u-frac-part", "csv", "global-pair",
       "part-pair"});
  const bench::CommonFlags flags = bench::common_flags(args);
  const auto ms = args.get_int_list("m", {2, 4, 6, 8, 12, 16});
  const auto n = static_cast<std::size_t>(args.get_int("n", 6));
  // Target utilization scales with the platform: U = u_frac * m; each arm
  // runs in its own sensitive region (see EXPERIMENTS.md).
  const double u_frac_global = args.get_double("u-frac-global", 0.3);
  const double u_frac_part = args.get_double("u-frac-part", 0.175);
  const exp::AnalyzerPair global_pair = bench::parse_pair(
      args.get_string("global-pair", ""), exp::Scheduler::kGlobal);
  const exp::AnalyzerPair part_pair = bench::parse_pair(
      args.get_string("part-pair", ""), exp::Scheduler::kPartitioned);

  std::printf("Figure 2 (c)/(d): schedulability vs m  [n=%zu U_glob=%.2f*m "
              "U_part=%.2f*m trials=%d seed=%llu threads=%d]\n",
              n, u_frac_global, u_frac_part, flags.trials,
              static_cast<unsigned long long>(flags.seed), flags.threads);
  std::printf("  global: %s vs %s   partitioned: %s vs %s\n",
              std::string(global_pair.baseline->name()).c_str(),
              std::string(global_pair.proposed->name()).c_str(),
              std::string(part_pair.baseline->name()).c_str(),
              std::string(part_pair.proposed->name()).c_str());

  exp::ExperimentEngine engine(flags.threads);
  std::vector<exp::SweepRow> rows;
  for (std::int64_t m : ms) {
    exp::PointConfig config;
    config.gen.cores = static_cast<std::size_t>(m);
    config.gen.task_count = n;
    // Richer graphs (3-5 branches) give the blocking-fork count enough
    // variance for the reduced-concurrency effects the figure shows.
    config.gen.nfj.min_branches = 3;
    config.gen.nfj.max_branches = 5;
    config.filter_baseline = false;
    config.trials = flags.trials;
    config.max_attempts = flags.trials * 100;

    exp::SweepRow row;
    row.x = static_cast<double>(m);
    {
      config.gen.total_utilization = u_frac_global * static_cast<double>(m);
      const util::Rng rng(flags.seed * 1000003 + static_cast<std::uint64_t>(m));
      row.global = engine.evaluate_point(global_pair, config, rng);
    }
    {
      config.gen.total_utilization = u_frac_part * static_cast<double>(m);
      const util::Rng rng(flags.seed * 2000003 + static_cast<std::uint64_t>(m));
      row.partitioned = engine.evaluate_point(part_pair, config, rng);
    }
    rows.push_back(row);
    std::printf("  m=%-3lld global %.3f/%.3f  partitioned %.3f/%.3f\n",
                static_cast<long long>(m), row.global.baseline_ratio(),
                row.global.proposed_ratio(), row.partitioned.baseline_ratio(),
                row.partitioned.proposed_ratio());
  }

  exp::print_sweep("Figure 2(c)/(d): schedulability ratio vs m", "m", rows);
  exp::write_sweep_csv(args.get_string("csv", "fig2_m.csv"), "m", rows);
  return 0;
}
