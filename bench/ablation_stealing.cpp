// Ablation D: intra-pool dispatching policy, evaluated IN SIMULATION.
//
// Footnote 1 of the paper notes that many practical thread pools replicate
// global scheduling with per-thread queues plus work stealing. This bench
// measures, over random task sets with a pinned b̄:
//
//   * deadlock rate and deadline-miss rate under strict partitioned FIFO
//     with a *naive* (worst-fit, blocking-oblivious) partitioning;
//   * the same partitioning with work stealing enabled;
//   * a single global queue per pool (the footnote's reference behaviour);
//   * strict partitioned FIFO with Algorithm 1 partitions (never deadlocks).
//
// Expectation: naive partitions deadlock frequently; stealing removes the
// queue-behind-suspended-thread hazard and behaves like the global queue
// (both can still stall when l(t) hits 0 — Lemma 1 is policy-independent);
// Algorithm 1 removes the partitioning-induced deadlocks by construction.
#include <cstdio>

#include "analysis/partition.h"
#include "bench_common.h"
#include "exp/schedulability.h"
#include "gen/taskset_generator.h"
#include "sim/engine.h"
#include "util/csv.h"

namespace {

using namespace rtpool;

/// The four policies' simulation outcomes for one task set, as booleans so
/// trials can be evaluated concurrently and folded in trial order.
struct TrialOutcome {
  bool wf_ok = false;  ///< Worst-fit partition exists (naive/steal columns).
  bool naive_deadlock = false, naive_miss = false;
  bool steal_deadlock = false, steal_miss = false;
  bool global_deadlock = false, global_miss = false;
  bool alg1_ok = false;  ///< Algorithm 1 succeeded (alg1 columns).
  bool alg1_deadlock = false, alg1_miss = false;
};

struct Rates {
  int deadlocks = 0;
  int misses = 0;

  void add(bool deadlock, bool miss) {
    if (deadlock) {
      ++deadlocks;
    } else if (miss) {
      ++misses;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args = bench::parse_args(argc, argv, {"m", "n", "u", "csv"});
  const bench::CommonFlags flags = bench::common_flags(args, 200);
  const auto m = static_cast<std::size_t>(args.get_int("m", 4));
  const auto n = static_cast<std::size_t>(args.get_int("n", 3));
  const double u = args.get_double("u", 0.3 * static_cast<double>(m));
  const int trials = flags.trials;
  const std::uint64_t seed = flags.seed;
  const int threads = flags.threads;

  std::printf("Ablation D: simulated dispatching policies [m=%zu n=%zu U=%.2f "
              "trials=%d threads=%d]\n",
              m, n, u, trials, threads);
  std::printf("%-6s | %-22s %-22s %-22s %-22s\n", "bbar",
              "naive-part dl/miss", "naive+steal dl/miss", "global dl/miss",
              "alg1-part dl/miss");

  util::CsvWriter csv(args.get_string("csv", "ablation_stealing.csv"),
                      {"bbar", "naive_deadlock", "naive_miss", "steal_deadlock",
                       "steal_miss", "global_deadlock", "global_miss",
                       "alg1_deadlock", "alg1_miss"});

  exp::ExperimentEngine engine(threads);
  for (std::size_t bbar = 1; bbar < m; ++bbar) {
    gen::TaskSetParams params;
    params.cores = m;
    params.task_count = n;
    params.total_utilization = u;
    params.nfj.min_branches = 3;
    params.nfj.max_branches = 5;
    params.blocking_window = gen::BlockingWindow{bbar, bbar};
    const util::Rng rng(seed * 1000003 + bbar);

    Rates naive;
    Rates steal;
    Rates global_rates;
    Rates alg1_rates;
    int alg1_applicable = 0;

    engine.map_trials(
        static_cast<std::size_t>(trials), rng,
        [&](std::size_t /*trial*/, util::Rng& arng) {
          const model::TaskSet ts = gen::generate_task_set(params, arng);
          double max_period = 0.0;
          for (const auto& task : ts.tasks())
            max_period = std::max(max_period, task.period());

          sim::SimConfig cfg;
          // One synchronous busy window suffices: with synchronous release at
          // t = 0 the densest contention (and any partitioning deadlock) shows
          // up in the first jobs; longer horizons only replay it. This also
          // caps the event count when UUniFast draws extreme period ratios.
          cfg.horizon = 1.2 * max_period;

          TrialOutcome out;
          const auto record = [](const sim::SimResult& r, bool& deadlock,
                                 bool& miss) {
            deadlock = r.deadlock.has_value();
            miss = r.any_deadline_miss;
          };
          const auto wf = analysis::partition_worst_fit(ts);
          if (wf.success()) {
            out.wf_ok = true;
            cfg.policy = sim::SchedulingPolicy::kPartitioned;
            cfg.partition = *wf.partition;
            cfg.work_stealing = false;
            record(sim::simulate(ts, cfg), out.naive_deadlock, out.naive_miss);
            cfg.work_stealing = true;
            record(sim::simulate(ts, cfg), out.steal_deadlock, out.steal_miss);
          }

          cfg.policy = sim::SchedulingPolicy::kGlobal;
          cfg.partition.reset();
          cfg.work_stealing = false;
          record(sim::simulate(ts, cfg), out.global_deadlock, out.global_miss);

          const auto a1 = analysis::partition_algorithm1(ts);
          if (a1.success()) {
            out.alg1_ok = true;
            cfg.policy = sim::SchedulingPolicy::kPartitioned;
            cfg.partition = *a1.partition;
            record(sim::simulate(ts, cfg), out.alg1_deadlock, out.alg1_miss);
          }
          return out;
        },
        [&](std::size_t /*trial*/, const TrialOutcome& out) {
          if (out.wf_ok) {
            naive.add(out.naive_deadlock, out.naive_miss);
            steal.add(out.steal_deadlock, out.steal_miss);
          }
          global_rates.add(out.global_deadlock, out.global_miss);
          if (out.alg1_ok) {
            ++alg1_applicable;
            alg1_rates.add(out.alg1_deadlock, out.alg1_miss);
          }
        });

    const double d = trials;
    const double da = std::max(alg1_applicable, 1);
    std::printf("%-6zu | %8.3f/%-12.3f %8.3f/%-12.3f %8.3f/%-12.3f "
                "%8.3f/%-12.3f\n",
                bbar, naive.deadlocks / d, naive.misses / d, steal.deadlocks / d,
                steal.misses / d, global_rates.deadlocks / d,
                global_rates.misses / d, alg1_rates.deadlocks / da,
                alg1_rates.misses / da);
    csv.row_values(bbar, naive.deadlocks / d, naive.misses / d,
                   steal.deadlocks / d, steal.misses / d,
                   global_rates.deadlocks / d, global_rates.misses / d,
                   alg1_rates.deadlocks / da, alg1_rates.misses / da);
  }
  return 0;
}
