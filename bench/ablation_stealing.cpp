// Ablation D: intra-pool dispatching policy, evaluated IN SIMULATION.
//
// Footnote 1 of the paper notes that many practical thread pools replicate
// global scheduling with per-thread queues plus work stealing. This bench
// measures, over random task sets with a pinned b̄:
//
//   * deadlock rate and deadline-miss rate under strict partitioned FIFO
//     with a *naive* (worst-fit, blocking-oblivious) partitioning;
//   * the same partitioning with work stealing enabled;
//   * a single global queue per pool (the footnote's reference behaviour);
//   * strict partitioned FIFO with Algorithm 1 partitions (never deadlocks).
//
// Expectation: naive partitions deadlock frequently; stealing removes the
// queue-behind-suspended-thread hazard and behaves like the global queue
// (both can still stall when l(t) hits 0 — Lemma 1 is policy-independent);
// Algorithm 1 removes the partitioning-induced deadlocks by construction.
#include <cstdio>

#include "analysis/partition.h"
#include "gen/taskset_generator.h"
#include "sim/engine.h"
#include "util/args.h"
#include "util/csv.h"

namespace {

using namespace rtpool;

struct Rates {
  int deadlocks = 0;
  int misses = 0;

  void add(const sim::SimResult& r) {
    if (r.deadlock.has_value()) {
      ++deadlocks;
    } else if (r.any_deadline_miss) {
      ++misses;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rtpool;
  const util::Args args(argc, argv, {"m", "n", "u", "trials", "seed", "csv"});
  const auto m = static_cast<std::size_t>(args.get_int("m", 4));
  const auto n = static_cast<std::size_t>(args.get_int("n", 3));
  const double u = args.get_double("u", 0.3 * static_cast<double>(m));
  const int trials = static_cast<int>(args.get_int("trials", 200));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("Ablation D: simulated dispatching policies [m=%zu n=%zu U=%.2f "
              "trials=%d]\n",
              m, n, u, trials);
  std::printf("%-6s | %-22s %-22s %-22s %-22s\n", "bbar",
              "naive-part dl/miss", "naive+steal dl/miss", "global dl/miss",
              "alg1-part dl/miss");

  util::CsvWriter csv(args.get_string("csv", "ablation_stealing.csv"),
                      {"bbar", "naive_deadlock", "naive_miss", "steal_deadlock",
                       "steal_miss", "global_deadlock", "global_miss",
                       "alg1_deadlock", "alg1_miss"});

  for (std::size_t bbar = 1; bbar < m; ++bbar) {
    gen::TaskSetParams params;
    params.cores = m;
    params.task_count = n;
    params.total_utilization = u;
    params.nfj.min_branches = 3;
    params.nfj.max_branches = 5;
    params.blocking_window = gen::BlockingWindow{bbar, bbar};
    util::Rng rng(seed * 1000003 + bbar);

    Rates naive;
    Rates steal;
    Rates global_rates;
    Rates alg1_rates;
    int alg1_applicable = 0;

    for (int t = 0; t < trials; ++t) {
      const model::TaskSet ts = gen::generate_task_set(params, rng);
      double max_period = 0.0;
      for (const auto& task : ts.tasks())
        max_period = std::max(max_period, task.period());

      sim::SimConfig cfg;
      // One synchronous busy window suffices: with synchronous release at
      // t = 0 the densest contention (and any partitioning deadlock) shows
      // up in the first jobs; longer horizons only replay it. This also
      // caps the event count when UUniFast draws extreme period ratios.
      cfg.horizon = 1.2 * max_period;

      const auto wf = analysis::partition_worst_fit(ts);
      if (wf.success()) {
        cfg.policy = sim::SchedulingPolicy::kPartitioned;
        cfg.partition = *wf.partition;
        cfg.work_stealing = false;
        naive.add(sim::simulate(ts, cfg));
        cfg.work_stealing = true;
        steal.add(sim::simulate(ts, cfg));
      }

      cfg.policy = sim::SchedulingPolicy::kGlobal;
      cfg.partition.reset();
      cfg.work_stealing = false;
      global_rates.add(sim::simulate(ts, cfg));

      const auto a1 = analysis::partition_algorithm1(ts);
      if (a1.success()) {
        ++alg1_applicable;
        cfg.policy = sim::SchedulingPolicy::kPartitioned;
        cfg.partition = *a1.partition;
        alg1_rates.add(sim::simulate(ts, cfg));
      }
    }

    const double d = trials;
    const double da = std::max(alg1_applicable, 1);
    std::printf("%-6zu | %8.3f/%-12.3f %8.3f/%-12.3f %8.3f/%-12.3f "
                "%8.3f/%-12.3f\n",
                bbar, naive.deadlocks / d, naive.misses / d, steal.deadlocks / d,
                steal.misses / d, global_rates.deadlocks / d,
                global_rates.misses / d, alg1_rates.deadlocks / da,
                alg1_rates.misses / da);
    csv.row_values(bbar, naive.deadlocks / d, naive.misses / d,
                   steal.deadlocks / d, steal.misses / d,
                   global_rates.deadlocks / d, global_rates.misses / d,
                   alg1_rates.deadlocks / da, alg1_rates.misses / da);
  }
  return 0;
}
