// Unit tests for the NFJ graph / task-set generator of Section 5.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/concurrency.h"
#include "gen/nfj_generator.h"
#include "gen/taskset_generator.h"

namespace rtpool::gen {
namespace {

using model::NodeType;

TEST(NfjGeneratorTest, ProducesValidModelGraphs) {
  util::Rng rng(7);
  NfjParams params;
  for (int trial = 0; trial < 200; ++trial) {
    GeneratedGraph g = generate_nfj_graph(params, rng);
    // DagTask's constructor enforces every structural restriction of the
    // model; surviving construction is the property under test.
    model::DagTask task("t", std::move(g.dag), std::move(g.nodes), 100.0, 100.0);
    EXPECT_EQ(task.type(task.source()), NodeType::NB);
    EXPECT_EQ(task.type(task.sink()), NodeType::NB);
    EXPECT_GE(task.node_count(), 3u);
  }
}

TEST(NfjGeneratorTest, WcetsWithinRange) {
  util::Rng rng(8);
  NfjParams params;
  params.wcet_min = 5.0;
  params.wcet_max = 9.0;
  const GeneratedGraph g = generate_nfj_graph(params, rng);
  for (const model::Node& n : g.nodes) {
    EXPECT_GE(n.wcet, 5.0);
    EXPECT_LT(n.wcet, 9.0);
  }
  EXPECT_NEAR(g.volume(), [&] {
    double v = 0;
    for (const auto& n : g.nodes) v += n.wcet;
    return v;
  }(), 1e-9);
}

TEST(NfjGeneratorTest, Deterministic) {
  NfjParams params;
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 20; ++i) {
    const GeneratedGraph ga = generate_nfj_graph(params, a);
    const GeneratedGraph gb = generate_nfj_graph(params, b);
    ASSERT_EQ(ga.nodes.size(), gb.nodes.size());
    for (std::size_t v = 0; v < ga.nodes.size(); ++v)
      EXPECT_EQ(ga.nodes[v], gb.nodes[v]);
    EXPECT_EQ(ga.dag.edges(), gb.dag.edges());
  }
}

TEST(NfjGeneratorTest, AllowBlockingFalseYieldsPlainDags) {
  util::Rng rng(9);
  NfjParams params;
  params.allow_blocking = false;
  for (int trial = 0; trial < 50; ++trial) {
    const GeneratedGraph g = generate_nfj_graph(params, rng);
    for (const model::Node& n : g.nodes) EXPECT_EQ(n.type, NodeType::NB);
  }
}

TEST(NfjGeneratorTest, BlockingRegionsAppearFrequently) {
  util::Rng rng(10);
  NfjParams params;
  int with_regions = 0;
  const int trials = 100;
  for (int trial = 0; trial < trials; ++trial) {
    GeneratedGraph g = generate_nfj_graph(params, rng);
    model::DagTask task("t", std::move(g.dag), std::move(g.nodes), 100.0, 100.0);
    if (task.blocking_fork_count() > 0) ++with_regions;
  }
  // The outermost fork-join alone is blocking with p = 1/2.
  EXPECT_GT(with_regions, trials / 3);
}

TEST(NfjGeneratorTest, RejectsBadParams) {
  util::Rng rng(1);
  NfjParams p;
  p.parallel_prob = 1.5;
  EXPECT_THROW(generate_nfj_graph(p, rng), std::invalid_argument);
  p = NfjParams{};
  p.max_depth = 0;
  EXPECT_THROW(generate_nfj_graph(p, rng), std::invalid_argument);
  p = NfjParams{};
  p.min_branches = 1;
  EXPECT_THROW(generate_nfj_graph(p, rng), std::invalid_argument);
  p = NfjParams{};
  p.max_branches = 1;
  EXPECT_THROW(generate_nfj_graph(p, rng), std::invalid_argument);
  p = NfjParams{};
  p.max_series = 0;
  EXPECT_THROW(generate_nfj_graph(p, rng), std::invalid_argument);
  p = NfjParams{};
  p.wcet_min = -1.0;
  EXPECT_THROW(generate_nfj_graph(p, rng), std::invalid_argument);
  p = NfjParams{};
  p.blocking_bias = 2.0;
  EXPECT_THROW(generate_nfj_graph(p, rng), std::invalid_argument);
}

TEST(TaskGeneratorTest, PeriodMatchesUtilization) {
  util::Rng rng(3);
  TaskSetParams params;
  for (double u : {0.1, 0.5, 2.0}) {
    const model::DagTask t = generate_task(params, 0, u, rng);
    EXPECT_NEAR(t.utilization(), u, 1e-9);
    EXPECT_DOUBLE_EQ(t.deadline(), t.period());
  }
}

TEST(TaskGeneratorTest, BlockingWindowEnforced) {
  util::Rng rng(4);
  TaskSetParams params;
  params.cores = 8;
  params.blocking_window = BlockingWindow{1, 2};
  for (int trial = 0; trial < 30; ++trial) {
    const model::DagTask t = generate_task(params, 0, 0.5, rng);
    const std::size_t b = analysis::max_affecting_forks(t);
    EXPECT_GE(b, 1u);
    EXPECT_LE(b, 2u);
  }
}

TEST(TaskGeneratorTest, ImpossibleWindowThrows) {
  util::Rng rng(5);
  TaskSetParams params;
  // max_depth = 1 leaves a single (outermost) fork-join sub-graph, so no
  // skeleton can ever host two mutually concurrent blocking regions.
  params.nfj.max_depth = 1;
  params.blocking_window = BlockingWindow{2, 2};
  params.max_graph_attempts = 50;
  EXPECT_THROW(generate_task(params, 0, 0.5, rng), GenerationError);
}

TEST(TaskGeneratorTest, WindowOverridesAllowBlocking) {
  // Targeted typing marks regions even when probabilistic typing is off.
  util::Rng rng(6);
  TaskSetParams params;
  params.cores = 8;
  params.nfj.allow_blocking = false;
  params.blocking_window = BlockingWindow{2, 2};
  const model::DagTask t = generate_task(params, 0, 0.5, rng);
  EXPECT_EQ(analysis::max_affecting_forks(t), 2u);
  EXPECT_EQ(t.blocking_fork_count(), 2u);
}

TEST(TaskGeneratorTest, ExactWindowAcrossRange) {
  // The figure-2 sweeps rely on pinning b̄ exactly for k = 0..7 at m = 8.
  util::Rng rng(7);
  TaskSetParams params;
  params.cores = 8;
  params.nfj.min_branches = 3;
  params.nfj.max_branches = 5;
  for (std::size_t k = 0; k <= 7; ++k) {
    params.blocking_window = BlockingWindow{k, k};
    const model::DagTask t = generate_task(params, 0, 0.5, rng);
    EXPECT_EQ(analysis::max_affecting_forks(t), k) << "k=" << k;
  }
}

TEST(TaskSetGeneratorTest, RespectsCountAndUtilization) {
  util::Rng rng(6);
  TaskSetParams params;
  params.cores = 8;
  params.task_count = 6;
  params.total_utilization = 4.0;
  const model::TaskSet ts = generate_task_set(params, rng);
  EXPECT_EQ(ts.size(), 6u);
  EXPECT_EQ(ts.core_count(), 8u);
  EXPECT_NEAR(ts.total_utilization(), 4.0, 1e-6);
  EXPECT_TRUE(ts.priorities_distinct());

  // Deadline-monotonic: priority order sorted by deadline.
  const auto order = ts.priority_order();
  for (std::size_t k = 1; k < order.size(); ++k)
    EXPECT_LE(ts.task(order[k - 1]).deadline(), ts.task(order[k]).deadline());

  // Unique names.
  std::set<std::string> names;
  for (const auto& t : ts.tasks()) names.insert(t.name());
  EXPECT_EQ(names.size(), ts.size());
}

TEST(TaskSetGeneratorTest, ZeroTasksThrows) {
  util::Rng rng(1);
  TaskSetParams params;
  params.task_count = 0;
  EXPECT_THROW(generate_task_set(params, rng), std::invalid_argument);
}

/// Property sweep over seeds: generated task sets always satisfy the model
/// invariants (validated in DagTask) and l̄ ∈ [m − b_max, m − b_min] when a
/// window is requested — the relation used by the Figure 2(a)/(b) sweeps.
class GeneratorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorPropertyTest, WindowPinsLowerBound) {
  util::Rng rng(GetParam());
  TaskSetParams params;
  params.cores = 8;
  params.task_count = 3;
  params.total_utilization = 2.0;
  params.blocking_window = BlockingWindow{2, 3};
  const model::TaskSet ts = generate_task_set(params, rng);
  for (const auto& t : ts.tasks()) {
    const long l = analysis::available_concurrency_lower_bound(t, params.cores);
    EXPECT_GE(l, 8 - 3) << "seed=" << GetParam();
    EXPECT_LE(l, 8 - 2) << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace rtpool::gen
