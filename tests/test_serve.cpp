// Tests for the rtpool-serve admission service: wire protocol decoding,
// content fingerprints, the cold/memo/incremental service paths and their
// counters, verdict bit-identity against a direct analyzer run, hot
// reconfiguration under load (nothing dropped), and the TCP frame server.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/rta_context.h"
#include "gen/taskset_generator.h"
#include "lint/render.h"
#include "model/io.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/json.h"
#include "util/net.h"
#include "util/rng.h"

namespace rtpool::serve {
namespace {

// ---------------------------------------------------------------------------
// Fixtures: a small generated system and textual mutations of it.

std::string generate_taskset_text(std::uint64_t seed, std::size_t tasks = 6) {
  gen::TaskSetParams params;
  params.cores = 4;
  params.task_count = tasks;
  params.total_utilization = 0.5 * 4.0;
  for (std::uint64_t salt = 0;; ++salt) {
    util::Rng rng(seed * 7919 + salt);
    try {
      std::ostringstream os;
      model::write_task_set(os, gen::generate_task_set(params, rng));
      return os.str();
    } catch (const gen::GenerationError&) {
      if (salt > 50) throw;
    }
  }
}

/// Scale the first `node ... wcet=` line of the LOWEST-priority task block
/// (numerically largest `priority=`): keeps the task-name multiset (same
/// family) while dirtying exactly one task, and the dirtied task is last in
/// priority order, so the donor's clean prefix is maximal.
std::string mutate_lowest_priority_task(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::size_t best_task_line = std::string::npos;
  long best_priority = -1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t at = lines[i].rfind("priority=");
    if (lines[i].rfind("task ", 0) != 0 || at == std::string::npos) continue;
    const long priority = std::stol(lines[i].substr(at + 9));
    if (priority > best_priority) {
      best_priority = priority;
      best_task_line = i;
    }
  }
  EXPECT_NE(best_task_line, std::string::npos);
  for (std::size_t i = best_task_line + 1; i < lines.size(); ++i) {
    if (lines[i].rfind("endtask", 0) == 0) break;
    const std::size_t at = lines[i].find("wcet=");
    if (lines[i].rfind("node ", 0) != 0 || at == std::string::npos) continue;
    std::size_t end = lines[i].find(' ', at);
    if (end == std::string::npos) end = lines[i].size();
    const double wcet = std::stod(lines[i].substr(at + 5, end - (at + 5)));
    std::ostringstream patched;
    patched << lines[i].substr(0, at + 5) << wcet * 1.25
            << lines[i].substr(end);
    lines[i] = patched.str();
    break;
  }
  std::ostringstream out;
  for (const std::string& l : lines) out << l << '\n';
  return out.str();
}

model::TaskSet parse_taskset(const std::string& text) {
  std::istringstream in(text);
  return model::read_task_set(in);
}

/// What the service must embed as "report": the same render the CLI's
/// --format=json path produces (default options, shared context).
std::string reference_report(const std::string& text, const std::string& name) {
  const model::TaskSet ts = parse_taskset(text);
  analysis::RtaContext ctx(ts);
  const analysis::AnalyzerOptions opts;
  return lint::render_json(analysis::get_analyzer(name).analyze(ts, ctx, opts),
                           ts);
}

Request submit_request(const std::string& text, const std::string& id,
                       const std::string& analyzer = "global-limited") {
  Request req;
  req.kind = Request::Kind::kSubmit;
  req.id = id;
  req.analyzer = analyzer;
  req.taskset_text = text;
  return req;
}

/// Submit synchronously: returns the rendered response document.
std::string submit_sync(AdmissionService& service, Request req) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  service.submit(std::move(req),
                 [&promise](const std::string& r) { promise.set_value(r); });
  return future.get();
}

// ---------------------------------------------------------------------------
// Protocol decoding.

TEST(ServeProtocolTest, DecodesSubmission) {
  const Request req = decode_request(util::parse_json(
      R"({"id":"r1","analyzer":"federated","wcet_scale":1.5,)"
      R"("certify":true,"taskset":"taskset cores=1\n"})"));
  EXPECT_EQ(req.kind, Request::Kind::kSubmit);
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.analyzer, "federated");
  EXPECT_DOUBLE_EQ(req.wcet_scale, 1.5);
  EXPECT_TRUE(req.certify);
  EXPECT_EQ(req.taskset_text, "taskset cores=1\n");
}

TEST(ServeProtocolTest, DecodesControlCommands) {
  EXPECT_EQ(decode_request(util::parse_json(R"({"cmd":"stats"})")).kind,
            Request::Kind::kStats);
  EXPECT_EQ(decode_request(util::parse_json(R"({"cmd":"shutdown"})")).kind,
            Request::Kind::kShutdown);
  const Request reload = decode_request(util::parse_json(
      R"({"cmd":"reload","workers":3,"batch":16,"analyzer":"federated"})"));
  EXPECT_EQ(reload.kind, Request::Kind::kReload);
  EXPECT_EQ(reload.reload_workers, std::optional<std::size_t>{3});
  EXPECT_EQ(reload.reload_batch, std::optional<std::size_t>{16});
  EXPECT_EQ(reload.reload_analyzer, std::optional<std::string>{"federated"});
  EXPECT_FALSE(reload.reload_shards.has_value());
  EXPECT_FALSE(reload.reload_cache.has_value());
}

TEST(ServeProtocolTest, RejectsMalformedRequests) {
  EXPECT_THROW(decode_request(util::parse_json("[1,2]")), ProtocolError);
  EXPECT_THROW(decode_request(util::parse_json(R"({"cmd":"nope"})")),
               ProtocolError);
  EXPECT_THROW(decode_request(util::parse_json(R"({"id":"x"})")),
               ProtocolError);  // no taskset, no cmd
  EXPECT_THROW(decode_request(util::parse_json(
                   R"({"taskset":"t","wcet_scale":0})")),
               ProtocolError);
  EXPECT_THROW(decode_request(util::parse_json(
                   R"({"taskset":"t","wcet_scale":-1})")),
               ProtocolError);
}

TEST(ServeProtocolTest, ExtractMemberReturnsRawBytes) {
  const std::string doc =
      R"({"a":{"nested":"}b{"},"report":{"x":[1,2],"s":"\"}\""},"z":1})";
  EXPECT_EQ(extract_member(doc, "report"), R"({"x":[1,2],"s":"\"}\""})");
  EXPECT_EQ(extract_member(doc, "z"), "1");
  EXPECT_EQ(extract_member(doc, "missing"), "");
}

// ---------------------------------------------------------------------------
// Fingerprints.

TEST(ServeFingerprintTest, MutationKeepsFamilyChangesOneTask) {
  const std::string base = generate_taskset_text(11);
  const std::string mutated = mutate_lowest_priority_task(base);
  ASSERT_NE(base, mutated);
  const TaskSetFingerprint a = fingerprint(parse_taskset(base));
  const TaskSetFingerprint b = fingerprint(parse_taskset(mutated));
  EXPECT_EQ(a.family, b.family) << "WCET mutation must keep the family";
  EXPECT_NE(a.set, b.set);
  ASSERT_EQ(a.task.size(), b.task.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < a.task.size(); ++i)
    changed += a.task[i] != b.task[i] ? 1 : 0;
  EXPECT_EQ(changed, 1u) << "exactly the mutated task's hash must change";
}

TEST(ServeFingerprintTest, DeterministicAcrossReparse) {
  const std::string text = generate_taskset_text(12);
  const TaskSetFingerprint a = fingerprint(parse_taskset(text));
  const TaskSetFingerprint b = fingerprint(parse_taskset(text));
  EXPECT_EQ(a.set, b.set);
  EXPECT_EQ(a.family, b.family);
  EXPECT_EQ(a.task, b.task);
}

// ---------------------------------------------------------------------------
// Service paths, counters, and verdict bit-identity.

TEST(AdmissionServiceTest, ColdFastMemoIncrementalPaths) {
  ServiceConfig config;
  config.workers = 2;
  config.shards = 2;
  AdmissionService service(config);
  const std::string text = generate_taskset_text(21);
  const std::string expected = reference_report(text, "global-limited");

  // 1. Cold: full analysis; report must be byte-identical to the reference.
  const std::string first = submit_sync(service, submit_request(text, "a"));
  EXPECT_EQ(util::parse_json(first).at("path").as_string(), "cold");
  EXPECT_TRUE(util::parse_json(first).at("ok").as_bool());
  EXPECT_EQ(extract_member(first, "report") + "\n", expected);

  // 2. Byte-identical resubmission: answered pre-parse from the fast memo.
  const std::string second = submit_sync(service, submit_request(text, "b"));
  EXPECT_EQ(util::parse_json(second).at("path").as_string(), "memo");
  EXPECT_EQ(extract_member(second, "report"), extract_member(first, "report"));
  EXPECT_EQ(service.stats().fast_hits, 1u);

  // 3. Same content, different bytes (trailing blank line): misses the
  //    text-keyed fast memo, hits the post-parse content memo.
  const std::string third = submit_sync(service, submit_request(text + "\n", "c"));
  EXPECT_EQ(util::parse_json(third).at("path").as_string(), "memo");
  EXPECT_EQ(extract_member(third, "report"), extract_member(first, "report"));
  EXPECT_EQ(service.stats().fast_hits, 1u);
  EXPECT_EQ(service.stats().memo_hits, 2u);

  // 4. Mutated resubmission: same family, incremental donor path, and the
  //    verdict is still byte-identical to a cold reference run.
  const std::string mutated = mutate_lowest_priority_task(text);
  const std::string fourth = submit_sync(service, submit_request(mutated, "d"));
  EXPECT_EQ(util::parse_json(fourth).at("path").as_string(), "incremental");
  EXPECT_EQ(extract_member(fourth, "report") + "\n",
            reference_report(mutated, "global-limited"));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.received, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.cold, 1u);
  EXPECT_EQ(stats.incremental, 1u);
  EXPECT_GT(stats.incremental_task_hits, 0u);
}

TEST(AdmissionServiceTest, CacheZeroDisablesEveryWarmPath) {
  ServiceConfig config;
  config.workers = 1;
  config.shards = 1;
  config.cache = 0;  // the naive baseline the bench compares against
  AdmissionService service(config);
  const std::string text = generate_taskset_text(22);
  for (const char* id : {"a", "b", "c"}) {
    const std::string response =
        submit_sync(service, submit_request(text, id));
    EXPECT_EQ(util::parse_json(response).at("path").as_string(), "cold");
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cold, 3u);
  EXPECT_EQ(stats.memo_hits, 0u);
  EXPECT_EQ(stats.fast_hits, 0u);
}

TEST(AdmissionServiceTest, VerdictsMatchEveryRegisteredAnalyzer) {
  ServiceConfig config;
  config.workers = 2;
  AdmissionService service(config);
  const std::string text = generate_taskset_text(23);
  for (const analysis::Analyzer* analyzer : analysis::registered_analyzers()) {
    const std::string name(analyzer->name());
    const std::string response =
        submit_sync(service, submit_request(text, "id-" + name, name));
    const util::JsonValue doc = util::parse_json(response);
    ASSERT_TRUE(doc.at("ok").as_bool()) << name << ": " << response;
    EXPECT_EQ(doc.at("analyzer").as_string(), name);
    EXPECT_EQ(extract_member(response, "report") + "\n",
              reference_report(text, name))
        << "served report differs from direct render for " << name;
  }
}

TEST(AdmissionServiceTest, InvalidSubmissionsGetErrorResponses) {
  AdmissionService service(ServiceConfig{});
  {
    const std::string response =
        submit_sync(service, submit_request("not a taskset", "bad1"));
    const util::JsonValue doc = util::parse_json(response);
    EXPECT_FALSE(doc.at("ok").as_bool());
    EXPECT_EQ(doc.at("id").as_string(), "bad1");
  }
  {
    const std::string response = submit_sync(
        service,
        submit_request(generate_taskset_text(24), "bad2", "no-such-analyzer"));
    EXPECT_FALSE(util::parse_json(response).at("ok").as_bool());
  }
  EXPECT_EQ(service.stats().errors, 2u);
}

TEST(AdmissionServiceTest, ShutdownRejectsNewSubmissions) {
  AdmissionService service(ServiceConfig{});
  const std::string text = generate_taskset_text(25);
  EXPECT_TRUE(util::parse_json(submit_sync(service, submit_request(text, "x")))
                  .at("ok")
                  .as_bool());
  service.request_shutdown();
  EXPECT_TRUE(service.shutdown_requested());
  EXPECT_FALSE(util::parse_json(submit_sync(service, submit_request(text, "y")))
                   .at("ok")
                   .as_bool());
}

TEST(AdmissionServiceTest, ReloadUnderLoadDropsNothing) {
  ServiceConfig config;
  config.workers = 2;
  config.shards = 2;
  config.batch = 4;
  AdmissionService service(config);

  std::vector<std::string> texts;
  for (std::uint64_t seed = 30; seed < 34; ++seed)
    texts.push_back(generate_taskset_text(seed));

  constexpr int kRequests = 120;
  std::atomic<int> answered{0};
  std::atomic<int> failed{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  const auto on_response = [&](const std::string& response) {
    if (!util::parse_json(response).at("ok").as_bool())
      failed.fetch_add(1, std::memory_order_relaxed);
    if (answered.fetch_add(1, std::memory_order_relaxed) + 1 == kRequests) {
      std::lock_guard<std::mutex> lock(done_mutex);
      done_cv.notify_all();
    }
  };

  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = t; i < kRequests; i += 3)
        service.submit(
            submit_request(texts[static_cast<std::size_t>(i) % texts.size()],
                           "r" + std::to_string(i)),
            on_response);
    });
  }
  // Reconfigure while the submitters are blasting: workers down, batch up.
  const ServiceConfig committed =
      service.reload(std::nullopt, 1, std::nullopt, 8, std::nullopt);
  EXPECT_EQ(committed.workers, 1u);
  EXPECT_EQ(committed.batch, 8u);
  for (std::thread& t : submitters) t.join();

  std::unique_lock<std::mutex> lock(done_mutex);
  ASSERT_TRUE(done_cv.wait_for(lock, std::chrono::seconds(60), [&] {
    return answered.load(std::memory_order_relaxed) == kRequests;
  })) << "only " << answered.load() << "/" << kRequests << " answered";
  EXPECT_EQ(failed.load(), 0);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.received, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_GE(stats.reloads, 1u);
  // The worker delta went through the guarded mode-change transition.
  EXPECT_FALSE(service.transition_log().empty());
}

TEST(AdmissionServiceTest, ThrowingDeliveryCallbackDoesNotWedgeDispatch) {
  // Regression: an exception escaping per-request processing on a pool
  // worker used to leave dispatch_scheduled set and the active/pending
  // counters undrained, permanently wedging the shard — wait_idle() and
  // the destructor would hang.
  AdmissionService service(ServiceConfig{});
  std::promise<void> first_called;
  service.submit(submit_request(generate_taskset_text(26), "boom"),
                 [&](const std::string&) {
                   first_called.set_value();
                   throw std::runtime_error("client callback exploded");
                 });
  first_called.get_future().wait();
  service.wait_idle();  // hangs without the run_dispatch exception guard

  // The shard still dispatches subsequent work.
  const std::string response =
      submit_sync(service, submit_request(generate_taskset_text(27), "after"));
  EXPECT_TRUE(util::parse_json(response).at("ok").as_bool());
  EXPECT_EQ(service.stats().completed, 2u);
}

TEST(AdmissionServiceTest, ShardReplacingReloadStormDropsNothing) {
  // Hammers the submit/reload race: every reload here changes the shard
  // count, so queued submissions are re-routed into brand-new shard
  // objects — the exact path where a racing push used to land in a retired
  // shard's queue after its re-route pass and sit there forever.
  ServiceConfig config;
  config.workers = 2;
  config.shards = 2;
  config.batch = 2;
  AdmissionService service(config);

  std::vector<std::string> texts;
  for (std::uint64_t seed = 50; seed < 54; ++seed)
    texts.push_back(generate_taskset_text(seed));

  constexpr int kRequests = 160;
  std::atomic<int> answered{0};
  std::atomic<int> failed{0};
  const auto on_response = [&](const std::string& response) {
    if (!util::parse_json(response).at("ok").as_bool())
      failed.fetch_add(1, std::memory_order_relaxed);
    answered.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = t; i < kRequests; i += 4)
        service.submit(
            submit_request(texts[static_cast<std::size_t>(i) % texts.size()],
                           "s" + std::to_string(i)),
            on_response);
    });
  }
  for (int r = 0; r < 6; ++r)
    service.reload(std::nullopt, std::nullopt, r % 2 == 0 ? 3 : 2,
                   std::nullopt, std::nullopt);
  for (std::thread& t : submitters) t.join();
  service.wait_idle();  // hangs if any submission was stranded

  EXPECT_EQ(answered.load(), kRequests);
  EXPECT_EQ(failed.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.received, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_GE(stats.reloads, 6u);
}

// ---------------------------------------------------------------------------
// Frame transport + TCP server end to end.

TEST(ServeNetTest, FrameRoundTripOverLoopback) {
  util::TcpListener listener("127.0.0.1", 0);
  std::string received;
  std::thread echo([&] {
    util::Socket conn = listener.accept();
    ASSERT_TRUE(conn.valid());
    const std::optional<std::string> frame = util::read_frame(conn);
    ASSERT_TRUE(frame.has_value());
    received = *frame;
    util::write_frame(conn, "pong:" + *frame);
  });
  util::Socket client = util::tcp_connect("127.0.0.1", listener.port());
  // Embedded NUL and non-ASCII bytes must survive the frame transport.
  const std::string payload = std::string("ping\0\xff\n", 7);
  util::write_frame(client, payload);
  const std::optional<std::string> reply = util::read_frame(client);
  echo.join();
  EXPECT_EQ(received, payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "pong:" + payload);
}

TEST(ServeNetTest, TcpServerAnswersAndShutsDown) {
  ServiceConfig config;
  config.workers = 2;
  AdmissionService service(config);
  TcpServer server(service, "127.0.0.1", 0);  // ephemeral port
  server.start();

  const std::string text = generate_taskset_text(40);
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object().kv("id", "tcp1").kv("taskset", text).end_object();

  util::Socket client = util::tcp_connect("127.0.0.1", server.port());
  util::write_frame(client, os.str());
  const std::optional<std::string> response = util::read_frame(client);
  ASSERT_TRUE(response.has_value());
  const util::JsonValue doc = util::parse_json(*response);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("id").as_string(), "tcp1");
  EXPECT_EQ(extract_member(*response, "report") + "\n",
            reference_report(text, service.config().analyzer));

  // A malformed document gets an error response, not a dropped connection.
  util::write_frame(client, "{\"cmd\":\"nope\"}");
  const std::optional<std::string> error = util::read_frame(client);
  ASSERT_TRUE(error.has_value());
  EXPECT_FALSE(util::parse_json(*error).at("ok").as_bool());

  util::write_frame(client, R"({"cmd":"shutdown"})");
  const std::optional<std::string> ack = util::read_frame(client);
  ASSERT_TRUE(ack.has_value());
  server.wait();
  server.stop();
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(ServeNetTest, ReapsFinishedConnectionThreads) {
  // A long-lived daemon must not hold one joinable thread handle per
  // connection it has ever served: housekeeping reaps finished connection
  // threads, so after every client disconnects the tracked count drains
  // back to zero without stop().
  AdmissionService service(ServiceConfig{});
  TcpServer server(service, "127.0.0.1", 0);
  server.start();
  for (int i = 0; i < 5; ++i) {
    util::Socket client = util::tcp_connect("127.0.0.1", server.port());
    util::write_frame(client, R"({"cmd":"stats"})");
    ASSERT_TRUE(util::read_frame(client).has_value());
  }  // client closes at scope exit
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.tracked_connections() > 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server.tracked_connections(), 0u);
  server.stop();
}

}  // namespace
}  // namespace rtpool::serve
