// Unit tests for the global response-time analysis of Section 4.1:
// the [14]-style baseline and the limited-concurrency adaptation (Eq. 4).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/concurrency.h"
#include "analysis/global_rta.h"
#include "gen/taskset_generator.h"
#include "model/builder.h"

namespace rtpool::analysis {
namespace {

using model::DagTask;
using model::DagTaskBuilder;
using model::NodeId;
using model::TaskSet;

DagTask one_region_task(util::Time period = 100.0) {
  DagTaskBuilder b("one");
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(2.0, 3.0, {4.0, 5.0, 6.0});
  const NodeId post = b.add_node(1.0);
  b.add_edge(pre, fj.fork);
  b.add_edge(fj.join, post);
  b.period(period);
  return b.build();
}

TEST(GlobalRtaTest, SingleTaskBaselineClosedForm) {
  // Plain fork-join: len = 3, vol = 2 + 3*2 = wait, compute: fork 1, join 1,
  // three children of 2 each: vol = 8, len = 1+2+1 = 4.
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 3, 2.0, 100.0, false)
             .with_priority(0));
  // Replace fork/join WCETs: make_fork_join_task uses node_wcet everywhere,
  // so fork=2, join=2, children=2: vol = 10, len = 6.
  const auto result = analyze_global(ts);
  ASSERT_TRUE(result.schedulable);
  // R = len + (vol - len)/m = 6 + 4/2 = 8.
  EXPECT_NEAR(result.per_task[0].response_time, 8.0, 1e-9);
}

TEST(GlobalRtaTest, LimitedConcurrencyDividesByLowerBound) {
  // one_region_task: vol = 22, len = 13, b̄ = 1.
  TaskSet ts(3);
  ts.add(one_region_task());
  GlobalRtaOptions baseline;
  const auto base = analyze_global(ts, baseline);
  ASSERT_TRUE(base.schedulable);
  EXPECT_NEAR(base.per_task[0].response_time, 13.0 + 9.0 / 3.0, 1e-9);

  GlobalRtaOptions limited;
  limited.limited_concurrency = true;
  const auto lim = analyze_global(ts, limited);
  ASSERT_TRUE(lim.schedulable);
  EXPECT_EQ(lim.per_task[0].concurrency_bound, 2);
  EXPECT_NEAR(lim.per_task[0].response_time, 13.0 + 9.0 / 2.0, 1e-9);
}

TEST(GlobalRtaTest, ZeroLowerBoundIsUnschedulable) {
  TaskSet ts(1);  // m = 1, b̄ = 1 -> l̄ = 0
  ts.add(one_region_task());
  GlobalRtaOptions limited;
  limited.limited_concurrency = true;
  const auto result = analyze_global(ts, limited);
  EXPECT_FALSE(result.schedulable);
  EXPECT_FALSE(result.per_task[0].schedulable);
  EXPECT_TRUE(std::isinf(result.per_task[0].response_time));
  // The baseline happily accepts the same set (the paper's point).
  EXPECT_TRUE(analyze_global(ts).schedulable);
}

TEST(GlobalRtaTest, HigherPriorityInterferenceHandComputed) {
  // tau0 (hp): single node C=2, T=10 -> R0 = 2.
  // tau1: single node C=3, T=50, m=1.
  // R1 = 3 + I with I = ceil((R1 + R0 - vol0/1)/10) * 2.
  TaskSet ts(1);
  {
    DagTaskBuilder b("hp");
    b.add_node(2.0);
    b.period(10.0).priority(0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("lp");
    b.add_node(3.0);
    b.period(50.0).priority(1);
    ts.add(b.build());
  }
  const auto result = analyze_global(ts);
  ASSERT_TRUE(result.schedulable);
  EXPECT_NEAR(result.per_task[0].response_time, 2.0, 1e-9);
  // Fixpoint: R=3 -> I=ceil(3/10)*2=2 -> R=5 -> I=ceil(5/10)*2=2 -> stop.
  EXPECT_NEAR(result.per_task[1].response_time, 5.0, 1e-9);
}

TEST(GlobalRtaTest, DivergenceDetected) {
  // hp task saturates the single core: U = 1; lp can never converge.
  TaskSet ts(1);
  {
    DagTaskBuilder b("hp");
    b.add_node(10.0);
    b.period(10.0).priority(0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("lp");
    b.add_node(1.0);
    b.period(100.0).priority(1);
    ts.add(b.build());
  }
  const auto result = analyze_global(ts);
  EXPECT_FALSE(result.schedulable);
  EXPECT_TRUE(result.per_task[0].schedulable);
  EXPECT_FALSE(result.per_task[1].schedulable);
}

TEST(GlobalRtaTest, DistinctPrioritiesRequired) {
  TaskSet ts(2);
  ts.add(one_region_task().with_priority(1));
  ts.add(model::make_fork_join_task("x", 2, 1.0, 60.0, false).with_priority(1));
  EXPECT_THROW(analyze_global(ts), model::ModelError);
}

TEST(GlobalRtaTest, CarryInBoundNeverLooser) {
  util::Rng rng(99);
  gen::TaskSetParams params;
  params.cores = 4;
  params.task_count = 4;
  params.total_utilization = 2.0;
  for (int trial = 0; trial < 30; ++trial) {
    const TaskSet ts = gen::generate_task_set(params, rng);
    GlobalRtaOptions ceil_opts;
    ceil_opts.bound = InterferenceBound::kPaperCeil;
    GlobalRtaOptions carry_opts;
    carry_opts.bound = InterferenceBound::kMelaniCarryIn;
    const auto a = analyze_global(ts, ceil_opts);
    const auto b = analyze_global(ts, carry_opts);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (std::isinf(a.per_task[i].response_time)) continue;
      EXPECT_LE(b.per_task[i].response_time,
                a.per_task[i].response_time + 1e-6)
          << "trial=" << trial << " task=" << i;
    }
  }
}

/// Properties that must hold on arbitrary generated task sets.
class GlobalRtaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobalRtaPropertyTest, LimitedTestIsNeverMoreOptimistic) {
  util::Rng rng(GetParam());
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 5;
  params.total_utilization = 3.5;
  const TaskSet ts = gen::generate_task_set(params, rng);

  GlobalRtaOptions baseline;
  GlobalRtaOptions limited;
  limited.limited_concurrency = true;
  const auto base = analyze_global(ts, baseline);
  const auto lim = analyze_global(ts, limited);

  // Limited-concurrency schedulable implies baseline schedulable, and the
  // limited response bound dominates the baseline bound per task.
  if (lim.schedulable) {
    EXPECT_TRUE(base.schedulable) << "seed=" << GetParam();
  }
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const double rb = base.per_task[i].response_time;
    const double rl = lim.per_task[i].response_time;
    if (std::isinf(rl)) continue;  // lim failed, nothing to compare
    EXPECT_GE(rl + 1e-9, rb) << "seed=" << GetParam() << " task=" << i;
    EXPECT_GE(rb + 1e-9, ts.task(i).critical_path_length());
  }

  // Sanity: per-task concurrency bound matches the direct computation.
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(lim.per_task[i].concurrency_bound,
              available_concurrency_lower_bound(ts.task(i), ts.core_count()));
  }
}

TEST_P(GlobalRtaPropertyTest, SustainableUnderWcetReduction) {
  // Sustainability: uniformly scaling every WCET down (periods unchanged)
  // can only shrink the response-time bounds — an accepted set stays
  // accepted. This guards the analysis against anomalies.
  util::Rng rng(GetParam() + 500);
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 4;
  params.total_utilization = 3.0;
  const TaskSet ts = gen::generate_task_set(params, rng);

  // Rebuild with all WCETs scaled by 0.8.
  TaskSet scaled(ts.core_count());
  for (const auto& t : ts.tasks()) {
    graph::Dag dag = t.dag();
    std::vector<model::Node> nodes;
    for (model::NodeId v = 0; v < t.node_count(); ++v)
      nodes.push_back({t.wcet(v) * 0.8, t.type(v)});
    scaled.add(model::DagTask(t.name(), std::move(dag), std::move(nodes),
                              t.period(), t.deadline(), t.priority()));
  }

  for (bool limited : {false, true}) {
    GlobalRtaOptions opts;
    opts.limited_concurrency = limited;
    const auto before = analyze_global(ts, opts);
    const auto after = analyze_global(scaled, opts);
    if (before.schedulable) {
      EXPECT_TRUE(after.schedulable)
          << "seed=" << GetParam() << " limited=" << limited;
    }
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (!std::isfinite(before.per_task[i].response_time)) continue;
      EXPECT_LE(after.per_task[i].response_time,
                before.per_task[i].response_time + 1e-6)
          << "seed=" << GetParam() << " task=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalRtaPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace rtpool::analysis
