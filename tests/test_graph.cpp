// Unit tests for src/graph: Dag, algorithms, reachability, dot export.
#include <gtest/gtest.h>

#include <functional>

#include "graph/algorithms.h"
#include "graph/dag.h"
#include "graph/dot.h"
#include "graph/reachability.h"
#include "util/rng.h"

namespace rtpool::graph {
namespace {

Dag diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  return d;
}

TEST(DagTest, AddNodesAndEdges) {
  Dag d;
  EXPECT_EQ(d.size(), 0u);
  const NodeId a = d.add_node();
  const NodeId b = d.add_node();
  d.add_edge(a, b);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.edge_count(), 1u);
  EXPECT_TRUE(d.has_edge(a, b));
  EXPECT_FALSE(d.has_edge(b, a));
  EXPECT_EQ(d.out_degree(a), 1u);
  EXPECT_EQ(d.in_degree(b), 1u);
}

TEST(DagTest, RejectsSelfLoopDuplicateAndBadIds) {
  Dag d(2);
  d.add_edge(0, 1);
  EXPECT_THROW(d.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(d.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(d.add_edge(0, 5), std::invalid_argument);
  EXPECT_THROW(d.successors(9), std::invalid_argument);
}

TEST(DagTest, SourcesAndSinks) {
  const Dag d = diamond();
  EXPECT_EQ(d.sources(), (std::vector<NodeId>{0}));
  EXPECT_EQ(d.sinks(), (std::vector<NodeId>{3}));
}

TEST(DagTest, EdgesSorted) {
  const Dag d = diamond();
  const auto edges = d.edges();
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[3], (Edge{2, 3}));
}

TEST(DagTest, AcyclicDetection) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  EXPECT_TRUE(d.is_acyclic());
  d.add_edge(2, 0);
  EXPECT_FALSE(d.is_acyclic());
}

TEST(TopologicalOrderTest, RespectsEdges) {
  const Dag d = diamond();
  const auto order = topological_order(d);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const Edge& e : d.edges()) EXPECT_LT(pos[e.from], pos[e.to]);
}

TEST(TopologicalOrderTest, ThrowsOnCycle) {
  Dag d(2);
  d.add_edge(0, 1);
  d.add_edge(1, 0);
  EXPECT_THROW(topological_order(d), CycleError);
}

TEST(LongestPathTest, Diamond) {
  const Dag d = diamond();
  const std::vector<double> w{1.0, 10.0, 2.0, 1.0};
  const auto result = longest_path(d, w);
  EXPECT_DOUBLE_EQ(result.length, 12.0);
  EXPECT_EQ(result.path, (std::vector<NodeId>{0, 1, 3}));
}

TEST(LongestPathTest, SingleNodeAndEmpty) {
  Dag d(1);
  const auto r = longest_path(d, {7.5});
  EXPECT_DOUBLE_EQ(r.length, 7.5);
  EXPECT_EQ(r.path, (std::vector<NodeId>{0}));

  Dag empty;
  const auto e = longest_path(empty, {});
  EXPECT_DOUBLE_EQ(e.length, 0.0);
  EXPECT_TRUE(e.path.empty());
}

TEST(LongestPathTest, WeightMismatchThrows) {
  const Dag d = diamond();
  EXPECT_THROW(longest_path(d, {1.0}), std::invalid_argument);
}

TEST(LongestPathTest, PerNodeTable) {
  const Dag d = diamond();
  const std::vector<double> w{1.0, 10.0, 2.0, 1.0};
  const auto table = longest_path_to(d, w);
  EXPECT_DOUBLE_EQ(table[0], 1.0);
  EXPECT_DOUBLE_EQ(table[1], 11.0);
  EXPECT_DOUBLE_EQ(table[2], 3.0);
  EXPECT_DOUBLE_EQ(table[3], 12.0);
}

TEST(TotalWeightTest, Sums) {
  EXPECT_DOUBLE_EQ(total_weight({1.0, 2.5, 3.5}), 7.0);
  EXPECT_DOUBLE_EQ(total_weight({}), 0.0);
}

TEST(ConnectivityTest, WeaklyConnected) {
  EXPECT_TRUE(is_weakly_connected(diamond()));
  Dag d(3);
  d.add_edge(0, 1);  // node 2 isolated
  EXPECT_FALSE(is_weakly_connected(d));
  Dag empty;
  EXPECT_TRUE(is_weakly_connected(empty));
  Dag one(1);
  EXPECT_TRUE(is_weakly_connected(one));
}

TEST(ReachabilityTest, Diamond) {
  const Dag d = diamond();
  const Reachability r(d);
  EXPECT_TRUE(r.reaches(0, 3));
  EXPECT_TRUE(r.reaches(0, 1));
  EXPECT_FALSE(r.reaches(3, 0));
  EXPECT_FALSE(r.reaches(1, 2));
  EXPECT_TRUE(r.concurrent(1, 2));
  EXPECT_FALSE(r.concurrent(0, 3));
  EXPECT_FALSE(r.concurrent(1, 1));
  EXPECT_EQ(r.ancestors(3).count(), 3u);
  EXPECT_EQ(r.descendants(0).count(), 3u);
}

TEST(ReachabilityTest, MatchesBruteForceOnRandomDags) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 30;
    Dag d(n);
    // Random DAG: edges only forward in id order.
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j)
        if (rng.bernoulli(0.12)) d.add_edge(i, j);
    const Reachability r(d);

    // Brute force: DFS per node.
    for (NodeId s = 0; s < n; ++s) {
      std::vector<bool> seen(n, false);
      std::vector<NodeId> stack{s};
      while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        for (NodeId w : d.successors(v)) {
          if (!seen[w]) {
            seen[w] = true;
            stack.push_back(w);
          }
        }
      }
      for (NodeId t = 0; t < n; ++t) {
        if (t == s) continue;
        EXPECT_EQ(r.reaches(s, t), seen[t]) << "s=" << s << " t=" << t;
      }
    }
  }
}

TEST(ReachabilityTest, UnorderedMaskMatchesDefinition) {
  // unordered_mask(v) = all u != v with neither u ⤳ v nor v ⤳ u — i.e.
  // exactly the nodes `concurrent` with v.
  util::Rng rng(4047);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 40;
    Dag d(n);
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j)
        if (rng.bernoulli(0.1)) d.add_edge(i, j);
    const Reachability r(d);
    util::DynamicBitset mask;  // scratch, resized by the first call
    for (NodeId v = 0; v < n; ++v) {
      r.unordered_mask(v, mask);
      ASSERT_EQ(mask.size(), n);
      for (NodeId u = 0; u < n; ++u) {
        const bool expected = u != v && !r.reaches(u, v) && !r.reaches(v, u);
        EXPECT_EQ(mask.test(u), expected) << "v=" << v << " u=" << u;
        EXPECT_EQ(mask.test(u), r.concurrent(u, v)) << "v=" << v << " u=" << u;
      }
    }
  }
}

TEST(LongestPathTest, LengthOnlyKernelMatchesFullDp) {
  // longest_path_length (cached-order, scratch-buffer variant) must be
  // bit-identical to longest_path().length on random weighted DAGs.
  util::Rng rng(555);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 25;
    Dag d(n);
    std::vector<double> w(n);
    for (NodeId i = 0; i < n; ++i) {
      w[i] = rng.uniform(0.5, 7.0);
      for (NodeId j = i + 1; j < n; ++j)
        if (rng.bernoulli(0.15)) d.add_edge(i, j);
    }
    const std::vector<NodeId> order = topological_order(d);
    std::vector<double> scratch;
    EXPECT_EQ(longest_path_length(d, order, w, scratch),
              longest_path(d, w).length)
        << "trial=" << trial;
  }
}

TEST(LongestPathTest, MatchesBruteForceOnRandomDags) {
  // Exhaustive path enumeration on small random DAGs must agree with the
  // DP longest-path (both length and that the returned path is realizable).
  util::Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 10;
    Dag d(n);
    std::vector<double> w(n);
    for (NodeId i = 0; i < n; ++i) {
      w[i] = rng.uniform(1.0, 9.0);
      for (NodeId j = i + 1; j < n; ++j)
        if (rng.bernoulli(0.25)) d.add_edge(i, j);
    }

    // Brute force: DFS over all paths from every node.
    double best = 0.0;
    std::function<void(NodeId, double)> dfs = [&](NodeId v, double acc) {
      best = std::max(best, acc + w[v]);
      for (NodeId s : d.successors(v)) dfs(s, acc + w[v]);
    };
    for (NodeId v = 0; v < n; ++v) {
      if (d.in_degree(v) == 0) dfs(v, 0.0);
    }

    const auto result = longest_path(d, w);
    EXPECT_NEAR(result.length, best, 1e-9) << "trial=" << trial;

    // The returned path must be realizable and sum to the length.
    double sum = 0.0;
    for (std::size_t k = 0; k < result.path.size(); ++k) {
      sum += w[result.path[k]];
      if (k > 0) {
        EXPECT_TRUE(d.has_edge(result.path[k - 1], result.path[k]));
      }
    }
    EXPECT_NEAR(sum, result.length, 1e-9);
  }
}

TEST(DotTest, RendersNodesAndEdges) {
  const Dag d = diamond();
  const std::string dot = to_dot(d, {"src", "a", "b", "snk"}, "g");
  EXPECT_NE(dot.find("digraph g {"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"src\"]"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3;"), std::string::npos);
}

TEST(DotTest, EscapesQuotes) {
  Dag d(1);
  const std::string dot = to_dot(d, {"a\"b"});
  EXPECT_NE(dot.find("a\\\"b"), std::string::npos);
}

TEST(DotTest, LabelCountMismatchThrows) {
  const Dag d = diamond();
  EXPECT_THROW(to_dot(d, {"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace rtpool::graph
