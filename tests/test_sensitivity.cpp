// Unit tests for the critical-scaling sensitivity analysis.
#include <gtest/gtest.h>

#include "analysis/antichain.h"
#include "analysis/global_rta.h"
#include "analysis/sensitivity.h"
#include "gen/taskset_generator.h"
#include "model/builder.h"

namespace rtpool::analysis {
namespace {

using model::DagTaskBuilder;
using model::TaskSet;

SchedulabilityTest global_test(bool limited) {
  return [limited](const TaskSet& ts) {
    GlobalRtaOptions opts;
    opts.limited_concurrency = limited;
    return analyze_global(ts, opts).schedulable;
  };
}

TEST(ScaleWcetsTest, ScalesEveryNodeOnly) {
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 2, 3.0, 60.0, true));
  const TaskSet scaled = scale_wcets(ts, 0.5);
  const auto& a = ts.task(0);
  const auto& b = scaled.task(0);
  for (model::NodeId v = 0; v < a.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(b.wcet(v), a.wcet(v) * 0.5);
    EXPECT_EQ(b.type(v), a.type(v));
  }
  EXPECT_DOUBLE_EQ(b.period(), a.period());
  EXPECT_DOUBLE_EQ(b.deadline(), a.deadline());
  EXPECT_THROW(scale_wcets(ts, 0.0), std::invalid_argument);
}

TEST(CriticalScalingTest, ClosedFormSingleTask) {
  // Plain fork-join on m = 2: R(s) = s * (len + (vol-len)/2) = s * 8 (see
  // test_global_rta). Schedulable iff s * 8 <= 100 -> s* = 12.5, clamped
  // by the bracket's hi.
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 3, 2.0, 100.0, false));

  SensitivityOptions options;
  options.hi = 20.0;
  const double s = critical_scaling_factor(ts, global_test(false), options);
  EXPECT_NEAR(s, 12.5, 0.01);
}

TEST(CriticalScalingTest, BracketClamping) {
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 3, 2.0, 100.0, false));
  SensitivityOptions options;
  options.hi = 4.0;  // true s* = 12.5 is beyond the bracket
  EXPECT_DOUBLE_EQ(critical_scaling_factor(ts, global_test(false), options), 4.0);
}

TEST(CriticalScalingTest, InfeasibleReturnsZero) {
  // l̄ = 0: the limited test fails at every scale.
  TaskSet ts(1);
  DagTaskBuilder b("blocky");
  b.add_blocking_fork_join(1.0, 1.0, {1.0});
  b.period(100.0);
  ts.add(b.build());
  EXPECT_DOUBLE_EQ(critical_scaling_factor(ts, global_test(true)), 0.0);
}

TEST(CriticalScalingTest, TighterTestsHaveSmallerMargins) {
  // On random sets: s*(baseline) >= s*(antichain-limited) >= s*(b̄-limited).
  util::Rng rng(31);
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 3;
  params.total_utilization = 2.0;
  for (int trial = 0; trial < 10; ++trial) {
    const TaskSet ts = gen::generate_task_set(params, rng);
    const double s_base = critical_scaling_factor(ts, global_test(false));
    const double s_limited = critical_scaling_factor(ts, global_test(true));
    const double s_antichain = critical_scaling_factor(
        ts, [](const TaskSet& set) {
          GlobalRtaOptions opts;
          opts.limited_concurrency = true;
          opts.concurrency = ConcurrencyBound::kMaxAntichain;
          return analyze_global(set, opts).schedulable;
        });
    EXPECT_GE(s_base + 1e-6, s_antichain) << "trial=" << trial;
    EXPECT_GE(s_antichain + 1e-6, s_limited) << "trial=" << trial;
  }
}

TEST(CriticalScalingTest, FastPathClosedFormSingleTask) {
  // Fast-path mirror of ClosedFormSingleTask: same bracket, same closed
  // form s* = 12.5.
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 3, 2.0, 100.0, false));
  SensitivityOptions options;
  options.hi = 20.0;
  const SensitivityResult r =
      critical_scaling_factor_global(ts, GlobalRtaOptions{}, options);
  EXPECT_NEAR(r.factor, 12.5, 0.01);
  EXPECT_GT(r.probes, 0);
}

TEST(CriticalScalingTest, FastPathBracketClamping) {
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 3, 2.0, 100.0, false));
  SensitivityOptions options;
  options.hi = 4.0;  // true s* = 12.5 is beyond the bracket
  EXPECT_DOUBLE_EQ(
      critical_scaling_factor_global(ts, GlobalRtaOptions{}, options).factor,
      4.0);
}

TEST(CriticalScalingTest, FastPathInfeasibleReturnsZero) {
  TaskSet ts(1);
  DagTaskBuilder b("blocky");
  b.add_blocking_fork_join(1.0, 1.0, {1.0});
  b.period(100.0);
  ts.add(b.build());
  GlobalRtaOptions opts;
  opts.limited_concurrency = true;
  EXPECT_DOUBLE_EQ(critical_scaling_factor_global(ts, opts).factor, 0.0);
}

TEST(CriticalScalingTest, FastPathBadBracketThrows) {
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 2, 1.0, 50.0, false));
  SensitivityOptions bad;
  bad.lo = 2.0;
  bad.hi = 1.0;
  EXPECT_THROW(critical_scaling_factor_global(ts, GlobalRtaOptions{}, bad),
               std::invalid_argument);
}

TEST(CriticalScalingTest, CutoffProbesAreVerdictSafe) {
  // With a huge critical path relative to the deadline the cutoff decides
  // most failing probes; factor must match the cutoff-free search exactly.
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 3, 2.0, 100.0, false));
  SensitivityOptions with_cutoff;
  with_cutoff.hi = 20.0;
  SensitivityOptions without_cutoff = with_cutoff;
  without_cutoff.critical_path_cutoff = false;
  const SensitivityResult a =
      critical_scaling_factor_global(ts, GlobalRtaOptions{}, with_cutoff);
  const SensitivityResult b =
      critical_scaling_factor_global(ts, GlobalRtaOptions{}, without_cutoff);
  EXPECT_EQ(a.factor, b.factor);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(b.cutoff_probes, 0);
}

TEST(CriticalScalingTest, BadBracketThrows) {
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 2, 1.0, 50.0, false));
  SensitivityOptions bad;
  bad.lo = 2.0;
  bad.hi = 1.0;
  EXPECT_THROW(critical_scaling_factor(ts, global_test(false), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtpool::analysis
