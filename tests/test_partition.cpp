// Unit tests for Algorithm 1 and the worst-fit baseline partitioner.
#include <gtest/gtest.h>

#include "analysis/deadlock.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "gen/taskset_generator.h"
#include "model/builder.h"

namespace rtpool::analysis {
namespace {

using model::DagTask;
using model::DagTaskBuilder;
using model::NodeId;
using model::NodeType;
using model::TaskSet;

DagTask one_region_task(const std::string& name = "one") {
  DagTaskBuilder b(name);
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(2.0, 3.0, {4.0, 5.0});
  b.add_edge(pre, fj.fork);
  b.period(100.0);
  return b.build();
}

struct TwoRegions {
  DagTask task;
  NodeId f1, f2;
};

TwoRegions two_region_task() {
  DagTaskBuilder b("two");
  const NodeId src = b.add_node(1.0);
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {2.0, 2.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {2.0, 2.0});
  const NodeId snk = b.add_node(1.0);
  b.add_edge(src, r1.fork);
  b.add_edge(src, r2.fork);
  b.add_edge(r1.join, snk);
  b.add_edge(r2.join, snk);
  b.period(100.0);
  return {b.build(), r1.fork, r2.fork};
}

TEST(Algorithm1Test, OneRegionOnTwoThreads) {
  TaskSet ts(2);
  ts.add(one_region_task());
  const auto result = partition_algorithm1(ts);
  ASSERT_TRUE(result.success()) << result.failure;

  const DagTask& t = ts.task(0);
  const NodeAssignment& asg = result.partition->per_task[0];
  ASSERT_EQ(asg.thread_of.size(), t.node_count());
  // Eq. (3) holds by construction.
  EXPECT_FALSE(find_eq3_violation(t, asg).has_value());
  // BF and BJ share the thread (two halves of the same function).
  const auto& region = t.blocking_regions()[0];
  EXPECT_EQ(asg.thread_of[region.fork], asg.thread_of[region.join]);
}

TEST(Algorithm1Test, TwoConcurrentRegionsNeedThreeThreads) {
  const auto r = two_region_task();
  {
    TaskSet ts(2);
    ts.add(r.task);
    const auto result = partition_algorithm1(ts);
    EXPECT_FALSE(result.success());
    EXPECT_FALSE(result.failure.empty());
  }
  {
    TaskSet ts(3);
    ts.add(r.task);
    const auto result = partition_algorithm1(ts);
    ASSERT_TRUE(result.success()) << result.failure;
    const NodeAssignment& asg = result.partition->per_task[0];
    // Mutually concurrent forks must not share a thread.
    EXPECT_NE(asg.thread_of[r.f1], asg.thread_of[r.f2]);
    EXPECT_FALSE(find_eq3_violation(r.task, asg).has_value());
  }
}

TEST(Algorithm1Test, TaskWithoutBlockingAlwaysSucceeds) {
  TaskSet ts(1);
  ts.add(model::make_fork_join_task("plain", 4, 1.0, 100.0, false));
  EXPECT_TRUE(partition_algorithm1(ts).success());
}

TEST(Algorithm1Test, CapacityCheckCanFail) {
  // One node with utilization 2 cannot fit any unit-capacity core.
  DagTaskBuilder b("heavy");
  b.add_node(10.0);
  b.period(5.0);
  TaskSet ts(2);
  ts.add(b.build());
  EXPECT_TRUE(partition_algorithm1(ts).success());  // no capacity check
  EXPECT_FALSE(
      partition_algorithm1(ts, TieBreak::kWorstFit, /*capacity_check=*/true)
          .success());
}

TEST(Algorithm1Test, WorstFitTieBreakBalancesLoad) {
  // Many independent NB nodes: worst-fit should spread them evenly.
  DagTaskBuilder b("wide");
  const NodeId src = b.add_node(0.0);
  const NodeId snk = b.add_node(0.0);
  for (int i = 0; i < 8; ++i) {
    const NodeId v = b.add_node(10.0);
    b.add_edge(src, v);
    b.add_edge(v, snk);
  }
  b.period(100.0);
  TaskSet ts(4);
  ts.add(b.build());
  const auto result = partition_algorithm1(ts, TieBreak::kWorstFit);
  ASSERT_TRUE(result.success());
  const auto util = result.partition->core_utilization(ts);
  for (double u : util) EXPECT_NEAR(u, 0.2, 1e-9);  // 80/100 over 4 cores
}

TEST(Algorithm1Test, FirstFitTieBreakPacksLow) {
  DagTaskBuilder b("wide");
  const NodeId src = b.add_node(0.0);
  const NodeId snk = b.add_node(0.0);
  for (int i = 0; i < 4; ++i) {
    const NodeId v = b.add_node(10.0);
    b.add_edge(src, v);
    b.add_edge(v, snk);
  }
  b.period(100.0);
  TaskSet ts(4);
  ts.add(b.build());
  const auto result = partition_algorithm1(ts, TieBreak::kFirstFit);
  ASSERT_TRUE(result.success());
  const auto util = result.partition->core_utilization(ts);
  // Everything (no blocking constraints) lands on core 0: 4 * 10 / 100.
  EXPECT_NEAR(util[0], 0.4, 1e-9);
  EXPECT_NEAR(util[1], 0.0, 1e-9);
}

TEST(WorstFitTest, BalancesAcrossCores) {
  TaskSet ts(2);
  ts.add(one_region_task("a").with_priority(0));
  ts.add(one_region_task("b").with_priority(1));
  const auto result = partition_worst_fit(ts);
  ASSERT_TRUE(result.success());
  const auto util = result.partition->core_utilization(ts);
  const double total = util[0] + util[1];
  EXPECT_NEAR(total, ts.total_utilization(), 1e-9);
  // Worst-fit decreasing keeps the cores within one node of each other.
  EXPECT_LT(std::abs(util[0] - util[1]), 0.06);
}

TEST(WorstFitTest, FusesForkAndJoin) {
  TaskSet ts(4);
  ts.add(one_region_task());
  const auto result = partition_worst_fit(ts);
  ASSERT_TRUE(result.success());
  const DagTask& t = ts.task(0);
  const auto& region = t.blocking_regions()[0];
  const NodeAssignment& asg = result.partition->per_task[0];
  EXPECT_EQ(asg.thread_of[region.fork], asg.thread_of[region.join]);
}

TEST(WorstFitTest, FailsWhenNodeExceedsUnitCapacity) {
  DagTaskBuilder b("heavy");
  b.add_node(10.0);
  b.period(5.0);
  TaskSet ts(4);
  ts.add(b.build());
  EXPECT_FALSE(partition_worst_fit(ts).success());
}

TEST(PartitionTest, CoreUtilizationSums) {
  TaskSet ts(3);
  ts.add(one_region_task("a").with_priority(0));
  ts.add(model::make_fork_join_task("b", 3, 2.0, 40.0, false).with_priority(1));
  const auto result = partition_worst_fit(ts);
  ASSERT_TRUE(result.success());
  const auto util = result.partition->core_utilization(ts);
  double total = 0.0;
  for (double u : util) total += u;
  EXPECT_NEAR(total, ts.total_utilization(), 1e-9);
}

TEST(RandomizedAlg1Test, MatchesDeterministicOnEasySets) {
  TaskSet ts(2);
  ts.add(one_region_task());
  util::Rng rng(1);
  const auto result = partition_algorithm1_randomized(ts, rng, 8);
  ASSERT_TRUE(result.success());
  EXPECT_FALSE(find_eq3_violation(ts.task(0), result.partition->per_task[0])
                   .has_value());
}

TEST(RandomizedAlg1Test, FailsWhereAlgorithm1MustFail) {
  // Two concurrent regions on two threads: no restart can help (line 9
  // failures are structural, independent of the tie-break).
  const auto r = two_region_task();
  TaskSet ts(2);
  ts.add(r.task);
  util::Rng rng(2);
  const auto result = partition_algorithm1_randomized(ts, rng, 32);
  EXPECT_FALSE(result.success());
  EXPECT_FALSE(result.failure.empty());
}

TEST(RandomizedAlg1Test, MinResponseObjectiveNeverWorseThanWorstFit) {
  util::Rng gen_rng(77);
  gen::TaskSetParams params;
  params.cores = 6;
  params.task_count = 3;
  params.total_utilization = 1.5;
  int compared = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const TaskSet ts = gen::generate_task_set(params, gen_rng);
    const auto det = partition_algorithm1(ts);
    if (!det.success()) continue;
    const auto det_rta = analyze_partitioned(ts, *det.partition);

    util::Rng rng(trial + 1);
    const auto rnd = partition_algorithm1_randomized(
        ts, rng, 16, RandomizedObjective::kMinResponse);
    ASSERT_TRUE(rnd.success());
    const auto rnd_rta = analyze_partitioned(ts, *rnd.partition);

    auto worst = [&](const analysis::PartitionedRtaResult& rta) {
      double w = 0.0;
      for (std::size_t i = 0; i < ts.size(); ++i)
        w = std::max(w, rta.per_task[i].response_time / ts.task(i).deadline());
      return w;
    };
    EXPECT_LE(worst(rnd_rta), worst(det_rta) + 1e-9) << "trial=" << trial;
    ++compared;
    // The randomized result must still satisfy Eq. (3) everywhere.
    for (std::size_t i = 0; i < ts.size(); ++i)
      EXPECT_FALSE(
          find_eq3_violation(ts.task(i), rnd.partition->per_task[i]).has_value());
  }
  EXPECT_GT(compared, 0);
}

/// Property: whenever Algorithm 1 succeeds, Eq. (3) holds for every task
/// (that is the algorithm's entire point), and every BJ sits with its BF.
class Algorithm1PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Algorithm1PropertyTest, SuccessImpliesEq3) {
  util::Rng rng(GetParam());
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 4;
  params.total_utilization = 3.0;
  model::TaskSet ts = gen::generate_task_set(params, rng);

  const auto result = partition_algorithm1(ts);
  if (!result.success()) return;  // failure is a legitimate outcome
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const DagTask& t = ts.task(i);
    const NodeAssignment& asg = result.partition->per_task[i];
    EXPECT_FALSE(find_eq3_violation(t, asg).has_value())
        << "seed=" << GetParam() << " task=" << i;
    for (const auto& region : t.blocking_regions())
      EXPECT_EQ(asg.thread_of[region.fork], asg.thread_of[region.join]);
    for (NodeId v = 0; v < t.node_count(); ++v)
      EXPECT_LT(asg.thread_of[v], ts.core_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Algorithm1PropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace rtpool::analysis
