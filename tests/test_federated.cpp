// Unit tests for federated scheduling (analysis/federated.h), classic and
// limited-concurrency variants.
#include <gtest/gtest.h>

#include "analysis/federated.h"
#include "gen/taskset_generator.h"
#include "model/builder.h"

namespace rtpool::analysis {
namespace {

using model::DagTask;
using model::DagTaskBuilder;
using model::NodeId;
using model::TaskSet;

/// Heavy parallel task: vol = 12, len = 3, U = 12/6 = 2.
DagTask heavy_task(const std::string& name = "heavy") {
  DagTaskBuilder b(name);
  const auto fj = b.add_fork_join(1.0, 1.0, std::vector<util::Time>(10, 1.0));
  (void)fj;
  b.period(6.0);
  return b.build();
}

/// Light sequential-ish task without blocking.
DagTask light_task(const std::string& name, util::Time period) {
  DagTaskBuilder b(name);
  const NodeId a = b.add_node(1.0);
  const NodeId c = b.add_node(1.0);
  b.add_edge(a, c);
  b.period(period);
  return b.build();
}

/// Light task WITH one blocking region (vol = 4, U << 1).
DagTask light_blocking_task(const std::string& name, util::Time period) {
  DagTaskBuilder b(name);
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  b.add_edge(pre, fj.fork);
  b.period(period);
  return b.build();
}

TEST(FederatedTest, HeavyTaskCoreDemand) {
  TaskSet ts(8);
  ts.add(heavy_task());
  const auto r = analyze_federated(ts);
  ASSERT_TRUE(r.schedulable);
  EXPECT_TRUE(r.per_task[0].dedicated);
  // n = ceil((12-3)/(6-3)) = 3 cores.
  EXPECT_EQ(r.per_task[0].cores, 3u);
  EXPECT_EQ(r.dedicated_cores, 3u);
}

TEST(FederatedTest, HeavyTaskImpossibleDeadline) {
  // len > D: no number of cores helps.
  DagTaskBuilder b("tight");
  const NodeId a = b.add_node(5.0);
  const NodeId c = b.add_node(5.0);
  b.add_edge(a, c);
  b.period(9.0);
  TaskSet ts(8);
  ts.add(b.build());
  // U > 1 makes it heavy; critical path 10 > D = 9.
  const auto r = analyze_federated(ts);
  EXPECT_FALSE(r.schedulable);
  EXPECT_FALSE(r.per_task[0].schedulable);
}

TEST(FederatedTest, NotEnoughCores) {
  TaskSet ts(2);  // heavy task needs 3
  ts.add(heavy_task());
  const auto r = analyze_federated(ts);
  EXPECT_FALSE(r.schedulable);
}

TEST(FederatedTest, LightTasksShareRemainingCores) {
  TaskSet ts(4);
  ts.add(heavy_task());                    // takes 3 cores
  ts.add(light_task("l1", 10.0));          // U = 0.2
  ts.add(light_task("l2", 8.0));           // U = 0.25
  const auto r = analyze_federated(ts);
  ASSERT_TRUE(r.schedulable);
  EXPECT_FALSE(r.per_task[1].dedicated);
  EXPECT_FALSE(r.per_task[2].dedicated);
}

TEST(FederatedTest, LightOverloadRejected) {
  TaskSet ts(4);
  ts.add(heavy_task());  // 3 cores -> 1 left for the light tasks
  // Two light tasks that do not fit one core together: U = 0.6 + 0.6.
  {
    DagTaskBuilder b("l1");
    b.add_node(6.0);
    b.period(10.0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("l2");
    b.add_node(6.0);
    b.period(10.0);
    ts.add(b.build());
  }
  const auto r = analyze_federated(ts);
  EXPECT_FALSE(r.schedulable);
}

TEST(FederatedTest, LimitedVariantAddsSuspensionCores) {
  // Heavy blocking task: same shape as heavy_task but children are BC.
  DagTaskBuilder b("heavyb");
  b.add_blocking_fork_join(1.0, 1.0, std::vector<util::Time>(10, 1.0));
  b.period(6.0);
  TaskSet ts(8);
  ts.add(b.build());

  const auto classic = analyze_federated(ts);
  ASSERT_TRUE(classic.schedulable);
  EXPECT_EQ(classic.per_task[0].cores, 3u);

  FederatedOptions limited;
  limited.limited_concurrency = true;
  const auto adapted = analyze_federated(ts, limited);
  ASSERT_TRUE(adapted.schedulable);
  EXPECT_EQ(adapted.per_task[0].cores, 4u);  // +b̄ = +1
}

TEST(FederatedTest, LightBlockingTaskPromoted) {
  // Classic federated happily serializes a light blocking task — which
  // would deadlock on one thread. The limited variant promotes it.
  TaskSet ts(4);
  ts.add(light_blocking_task("lb", 100.0));

  const auto classic = analyze_federated(ts);
  EXPECT_TRUE(classic.schedulable);
  EXPECT_FALSE(classic.per_task[0].dedicated);

  FederatedOptions limited;
  limited.limited_concurrency = true;
  const auto adapted = analyze_federated(ts, limited);
  ASSERT_TRUE(adapted.schedulable);
  EXPECT_TRUE(adapted.per_task[0].dedicated);
  EXPECT_EQ(adapted.per_task[0].cores, 2u);  // 1 + b̄ = 2
}

TEST(FederatedTest, LimitedRequiresMoreCoresOverall) {
  util::Rng rng(5);
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 4;
  params.total_utilization = 2.0;
  for (int trial = 0; trial < 20; ++trial) {
    const TaskSet ts = gen::generate_task_set(params, rng);
    const auto classic = analyze_federated(ts);
    FederatedOptions opt;
    opt.limited_concurrency = true;
    const auto limited = analyze_federated(ts, opt);
    // The adaptation can only consume more dedicated cores.
    EXPECT_GE(limited.dedicated_cores, classic.dedicated_cores);
  }
}

}  // namespace
}  // namespace rtpool::analysis
