// Unit tests for Audsley's OPA over the deadline-jitter global test.
#include <gtest/gtest.h>

#include "analysis/global_rta.h"
#include "analysis/priority_assignment.h"
#include "gen/taskset_generator.h"
#include "model/builder.h"

namespace rtpool::analysis {
namespace {

using model::DagTaskBuilder;
using model::TaskSet;

TaskSet simple_pair() {
  TaskSet ts(2);
  {
    DagTaskBuilder b("fast");
    b.add_node(2.0);
    b.period(10.0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("slow");
    b.add_node(6.0);
    b.period(40.0);
    ts.add(b.build());
  }
  return ts;
}

TEST(AudsleyTest, AssignsDistinctPriorities) {
  const auto assigned = assign_priorities_audsley(simple_pair());
  ASSERT_TRUE(assigned.has_value());
  EXPECT_TRUE(assigned->priorities_distinct());
  // The resulting assignment passes the original (response-jitter) test.
  EXPECT_TRUE(analyze_global(*assigned).schedulable);
}

TEST(AudsleyTest, FailsOnOverload) {
  TaskSet ts(1);
  {
    DagTaskBuilder b("a");
    b.add_node(8.0);
    b.period(10.0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("c");
    b.add_node(8.0);
    b.period(10.0);
    ts.add(b.build());
  }
  EXPECT_FALSE(assign_priorities_audsley(ts).has_value());
}

TEST(AudsleyTest, LowestPriorityCheckMatchesIntuition) {
  // Single core: the placement decision is clear-cut.
  TaskSet ts(1);
  {
    DagTaskBuilder b("fast");
    b.add_node(2.0);
    b.period(10.0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("slow");
    b.add_node(6.0);
    b.period(40.0);
    ts.add(b.build());
  }
  GlobalRtaOptions options;
  // "slow" at the bottom: R = 6 + ceil((R + 10 - 2)/10)*2 -> 10 <= 40.
  EXPECT_TRUE(schedulable_at_lowest_priority(ts, 1, options));
  // "fast" at the bottom: R = 2 + ceil((R + 40 - 6)/40)*6 -> 14 > 10.
  EXPECT_FALSE(schedulable_at_lowest_priority(ts, 0, options));
}

TEST(AudsleyTest, LimitedConcurrencyGate) {
  // A blocking task with l̄ = 0 can never sit anywhere under the limited
  // test.
  TaskSet ts(1);
  {
    DagTaskBuilder b("blocky");
    const auto fj = b.add_blocking_fork_join(1.0, 1.0, {1.0});
    (void)fj;
    b.period(100.0);
    ts.add(b.build());
  }
  AudsleyOptions options;
  options.base.limited_concurrency = true;
  EXPECT_FALSE(assign_priorities_audsley(ts, options).has_value());
  // The baseline variant is happy.
  EXPECT_TRUE(assign_priorities_audsley(ts).has_value());
}

/// Property: whenever DM passes the deadline-jitter test, OPA must too
/// (OPA is optimal for OPA-compatible tests), and the OPA assignment must
/// pass the original response-jitter analysis.
class AudsleyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AudsleyPropertyTest, DominatesDeadlineMonotonic) {
  util::Rng rng(GetParam());
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 4;
  params.total_utilization = 2.5;
  const TaskSet ts = gen::generate_task_set(params, rng);

  AudsleyOptions options;
  options.base.limited_concurrency = true;

  // DM under the SAME OPA-compatible test: every task must pass at its DM
  // position, i.e. checking each task at the bottom of its suffix.
  const TaskSet dm = model::assign_deadline_monotonic(ts);
  const auto order = dm.priority_order();
  bool dm_ok = true;
  for (std::size_t k = 0; k < order.size() && dm_ok; ++k) {
    model::TaskSet view(ts.core_count());
    std::size_t candidate = 0;
    for (std::size_t j = k; j < order.size(); ++j) {
      if (order[j] == order[k]) candidate = j - k;
      view.add(dm.task(order[j]));
    }
    dm_ok = schedulable_at_lowest_priority(view, candidate, options.base);
  }

  const auto opa = assign_priorities_audsley(ts, options);
  if (dm_ok) {
    EXPECT_TRUE(opa.has_value()) << "seed=" << GetParam();
  }
  if (opa.has_value()) {
    EXPECT_TRUE(opa->priorities_distinct());
    GlobalRtaOptions verify;
    verify.limited_concurrency = true;
    EXPECT_TRUE(analyze_global(*opa, verify).schedulable)
        << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AudsleyPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace rtpool::analysis
