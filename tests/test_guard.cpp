// Tests for the runtime guard (exec/guard.h) and seeded fault injection
// (exec/fault.h): stall detection semantics, the Lemma 2 witness
// cross-check, recovery policies, exception-safe execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "analysis/concurrency.h"
#include "analysis/deadlock.h"
#include "exec/fault.h"
#include "exec/graph_executor.h"
#include "exec/thread_pool.h"
#include "model/builder.h"
#include "util/rng.h"

namespace rtpool::exec {
namespace {

using model::DagTask;
using model::DagTaskBuilder;
using model::NodeId;

/// Figure 1(a): one blocking fork-join between a pre and a post node.
DagTask fig1_task() {
  DagTaskBuilder b("fig1");
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(1.0, 1.0, {1.0, 1.0, 1.0});
  const NodeId post = b.add_node(1.0);
  b.add_edge(pre, fj.fork);
  b.add_edge(fj.join, post);
  b.period(100.0);
  return b.build();
}

/// Figure 1(c): two concurrent blocking regions — deadlocks on two workers.
DagTask fig1c_task() {
  DagTaskBuilder b("fig1c");
  const NodeId src = b.add_node(1.0);
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {1.0, 1.0, 1.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {1.0, 1.0, 1.0});
  const NodeId snk = b.add_node(1.0);
  b.add_edge(src, r1.fork);
  b.add_edge(src, r2.fork);
  b.add_edge(r1.join, snk);
  b.add_edge(r2.join, snk);
  b.period(100.0);
  return b.build();
}

std::set<NodeId> as_set(const std::vector<NodeId>& v) {
  return std::set<NodeId>(v.begin(), v.end());
}

/// First inner (BC) node of a region.
NodeId first_member(const model::BlockingRegion& region) {
  NodeId first = 0;
  bool found = false;
  region.members.for_each([&](std::size_t v) {
    if (!found) {
      first = static_cast<NodeId>(v);
      found = true;
    }
  });
  EXPECT_TRUE(found);
  return first;
}

/// A seeded all-overrun plan: every node misbehaves, the structural
/// deadlock of Fig. 1(c) is still forced, and the whole run replays from
/// the seed.
FaultPlan overrun_plan(const DagTask& task, std::uint64_t seed) {
  FaultPlanParams params;
  params.p_overrun = 1.0;
  params.max_overrun_factor = 2.0;
  return make_random_fault_plan(task, params, seed);
}

// ---------------------------------------------------------------------------
// Stall detection + Lemma 2 witness cross-check (the acceptance criterion).

TEST(GuardTest, Fig1cStallReportMatchesLemma2WitnessUnderReportPolicy) {
  const DagTask task = fig1c_task();
  const auto witness = analysis::find_wait_for_cycle(task, 2);
  ASSERT_TRUE(witness.has_value());

  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.microseconds_per_unit = 100.0;
  options.faults = overrun_plan(task, 42);
  const ExecReport report = exec.run_blocking(options);

  EXPECT_FALSE(report.completed);
  ASSERT_TRUE(report.stall.has_value());
  const StallReport& stall = *report.stall;
  EXPECT_FALSE(stall.budget_exhausted);  // quiescence proof, not a timeout
  EXPECT_EQ(stall.policy, RecoveryPolicy::kReport);
  EXPECT_EQ(stall.pool_workers, 2u);
  EXPECT_EQ(stall.blocked_workers, 2u);
  // The runtime wait-for cycle is exactly the static Lemma 2 witness.
  EXPECT_EQ(as_set(stall.wait_cycle), as_set(witness->forks));
  // Both suspended forks are diagnosed with their unfinished region sizes.
  ASSERT_EQ(stall.blocked.size(), 2u);
  for (const BlockedForkInfo& b : stall.blocked) {
    EXPECT_TRUE(b.worker.has_value());
    EXPECT_GT(b.remaining, 0u);
  }
  // The regions' children sit in the queue with every worker suspended.
  EXPECT_FALSE(stall.starved.empty());
  EXPECT_NE(stall.describe().find("wait-for cycle"), std::string::npos);
}

TEST(GuardTest, Fig1cEmergencyWorkerRescuesAndKeepsWitness) {
  const DagTask task = fig1c_task();
  const auto witness = analysis::find_wait_for_cycle(task, 2);
  ASSERT_TRUE(witness.has_value());

  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.microseconds_per_unit = 100.0;
  options.recovery = RecoveryPolicy::kEmergencyWorker;
  options.faults = overrun_plan(task, 42);
  const ExecReport report = exec.run_blocking(options);

  // The injected worker breaks the cycle: the run COMPLETES, yet the stall
  // diagnosis from the moment of detection is preserved.
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.nodes_executed, task.node_count());
  EXPECT_GE(report.emergency_workers, 1u);
  EXPECT_GE(pool.emergency_worker_count(), 1u);
  ASSERT_TRUE(report.stall.has_value());
  EXPECT_EQ(as_set(report.stall->wait_cycle), as_set(witness->forks));
  EXPECT_GE(report.stall->emergency_workers_injected, 1u);
  // b̄(τ) = 2 was genuinely exceeded: the pool ran with more than m threads.
  EXPECT_FALSE(report.ok());  // degraded, not clean
}

TEST(GuardTest, FailFastPolicyThrowsStallError) {
  const DagTask task = fig1c_task();
  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.recovery = RecoveryPolicy::kFailFast;
  try {
    exec.run_blocking(options);
    FAIL() << "expected StallError";
  } catch (const StallError& e) {
    EXPECT_FALSE(e.report().wait_cycle.empty());
    EXPECT_NE(std::string(e.what()).find("suspended"), std::string::npos);
  }
  // The pool survives fail-fast cancellation.
  std::atomic<bool> ran{false};
  std::mutex mu;
  std::condition_variable cv;
  pool.submit([&] {
    std::lock_guard lock(mu);
    ran = true;
    cv.notify_all();
  });
  std::unique_lock lock(mu);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return ran.load(); }));
}

TEST(GuardTest, PartitionedStarvationDiagnosedAsSelfCycle) {
  // All nodes of Fig. 1(a) on worker 0: the children starve behind their
  // own suspended fork — the Lemma 3 hazard, a 1-cycle in the wait-for
  // graph, with a free worker idling next to it.
  const DagTask task = fig1_task();
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker);
  ExecOptions options;
  options.assignment = analysis::NodeAssignment{
      std::vector<analysis::ThreadId>(task.node_count(), 0)};
  GraphExecutor exec(pool, task);
  const ExecReport report = exec.run_blocking(options);

  EXPECT_FALSE(report.completed);
  ASSERT_TRUE(report.stall.has_value());
  const StallReport& stall = *report.stall;
  EXPECT_FALSE(stall.budget_exhausted);
  const NodeId fork = task.blocking_regions()[0].fork;
  EXPECT_EQ(stall.wait_cycle, std::vector<NodeId>{fork});
  // The starved children are named, with the queue they are stuck in.
  EXPECT_FALSE(stall.starved.empty());
  for (const StarvedNodeInfo& s : stall.starved) {
    ASSERT_TRUE(s.queued_on.has_value());
    EXPECT_EQ(*s.queued_on, 0u);
  }
}

TEST(GuardTest, PartitionedStarvationRescuedByEmergencyWorker) {
  const DagTask task = fig1_task();
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker);
  ExecOptions options;
  options.assignment = analysis::NodeAssignment{
      std::vector<analysis::ThreadId>(task.node_count(), 0)};
  options.recovery = RecoveryPolicy::kEmergencyWorker;
  GraphExecutor exec(pool, task);
  const ExecReport report = exec.run_blocking(options);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.nodes_executed, task.node_count());
  EXPECT_GE(report.emergency_workers, 1u);
}

// ---------------------------------------------------------------------------
// Watchdog semantics (satellite): progress keeps a slow run alive.

TEST(GuardTest, CompletionNearBudgetIsNotReportedAsStall) {
  // Critical path 5 units * 20 ms/unit = 100 ms wall-clock against an 80 ms
  // budget: the run outlives the budget but every node completion counts as
  // progress, so the watchdog never fires.
  const DagTask task = fig1_task();
  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.microseconds_per_unit = 20000.0;
  options.watchdog = std::chrono::milliseconds(80);
  const ExecReport report = exec.run_blocking(options);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.stall.has_value());
  EXPECT_GE(report.elapsed.count(), 80000);  // it really ran past the budget
}

TEST(GuardTest, MaxBlockedWorkersEqualsAnalyticalBoundOnFig1c) {
  // ExecReport.max_blocked_workers must reach exactly b̄(τ) on the Fig. 1(c)
  // demo graph: both forks suspend, nothing else can.
  const DagTask task = fig1c_task();
  const std::size_t bbar = analysis::max_affecting_forks(task);
  ASSERT_EQ(bbar, 2u);
  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  const ExecReport report = exec.run_blocking(ExecOptions{});
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.max_blocked_workers, bbar);
}

TEST(GuardTest, LongStallGetsBudgetVerdictNotDeadlockClaim) {
  // A node stalls for 400 ms against a 100 ms budget: the pool is never
  // quiescent (the stalled worker counts as running), so the verdict is
  // budget exhaustion — with NO wait-for cycle claimed.
  const DagTask task = fig1_task();
  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.watchdog = std::chrono::milliseconds(100);
  NodeFault stall;
  stall.kind = FaultKind::kStall;
  stall.stall = std::chrono::milliseconds(400);
  options.faults.set(first_member(task.blocking_regions()[0]), stall);
  const ExecReport report = exec.run_blocking(options);
  EXPECT_FALSE(report.completed);
  ASSERT_TRUE(report.stall.has_value());
  EXPECT_TRUE(report.stall->budget_exhausted);
  EXPECT_TRUE(report.stall->wait_cycle.empty());
}

TEST(GuardTest, ShortStallFaultWithinBudgetCompletesCleanly) {
  const DagTask task = fig1_task();
  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  ExecOptions options;
  NodeFault stall;
  stall.kind = FaultKind::kStall;
  stall.stall = std::chrono::milliseconds(20);
  options.faults.set(first_member(task.blocking_regions()[0]), stall);
  const ExecReport report = exec.run_blocking(options);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.stall.has_value());
  EXPECT_TRUE(report.ok());
}

// ---------------------------------------------------------------------------
// Exception-safe execution.

TEST(GuardTest, ThrowingNodeBodyDegradesToFailedRun) {
  const DagTask task = fig1_task();
  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  const NodeId victim = task.blocking_regions()[0].fork;
  const ExecReport report =
      exec.run_blocking(ExecOptions{}, [&](NodeId v) {
        if (v == victim) throw std::runtime_error("body exploded");
      });
  // The run still completes: the failing fork releases its region, every
  // barrier opens, and the failure is recorded instead of terminating.
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.nodes_executed, task.node_count());
  ASSERT_EQ(report.failed_nodes.size(), 1u);
  EXPECT_EQ(report.failed_nodes[0], victim);
  EXPECT_EQ(report.first_error, "body exploded");
  EXPECT_FALSE(report.ok());
}

TEST(GuardTest, InjectedThrowFaultsRecordedInNonBlockingRun) {
  const DagTask task = fig1c_task();
  FaultPlanParams params;
  params.p_throw = 1.0;  // every node throws
  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.faults = make_random_fault_plan(task, params, 7);
  const ExecReport report = exec.run_non_blocking(options);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.failed_nodes.size(), task.node_count());
  EXPECT_NE(report.first_error.find("injected fault"), std::string::npos);
  EXPECT_NE(report.first_error.find("seed 7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Lost wakeups (drop-notify faults) are healed, not misreported.

TEST(GuardTest, DroppedNotifyHealedByGuard) {
  const DagTask task = fig1_task();
  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  ExecOptions options;
  NodeFault drop;
  drop.kind = FaultKind::kDropNotify;
  options.faults.set(task.blocking_regions()[0].join, drop);
  const ExecReport report = exec.run_blocking(options);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.nodes_executed, task.node_count());
  EXPECT_GE(report.lost_wakeups_recovered, 1u);
  EXPECT_FALSE(report.stall.has_value());
}

// ---------------------------------------------------------------------------
// Lethal faults: dead-worker detection, requeue, respawn, degradation.

TEST(GuardTest, WorkerDeathDetectedRequeuedAndRespawned) {
  const DagTask task = fig1_task();
  ThreadPool pool(2);  // b̄(fig1) + 1: the size the analysis admits
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.watchdog = std::chrono::milliseconds(5000);
  options.worker_liveness = std::chrono::milliseconds(100);
  options.respawn_backoff = std::chrono::milliseconds(5);
  NodeFault death;
  death.kind = FaultKind::kWorkerDeath;
  const NodeId victim = first_member(task.blocking_regions()[0]);
  options.faults.set(victim, death);

  std::vector<std::atomic<int>> runs(task.node_count());
  const ExecReport report =
      exec.run_blocking(options, [&](NodeId v) { ++runs[v]; });

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.nodes_executed, task.node_count());
  EXPECT_FALSE(report.stall.has_value());
  ASSERT_EQ(report.worker_recoveries.size(), 1u);
  EXPECT_TRUE(report.worker_recoveries[0].crashed);
  EXPECT_TRUE(report.worker_recoveries[0].respawned);
  EXPECT_EQ(report.workers_respawned, 1u);
  EXPECT_FALSE(report.degraded.has_value());
  EXPECT_EQ(pool.worker_deaths(), 1u);
  EXPECT_EQ(pool.worker_count(), 2u);  // replacement restored the size
  // The kill fires BEFORE the body (transactional pop): despite the retry,
  // every node body ran exactly once — nothing lost, nothing duplicated.
  for (NodeId v = 0; v < task.node_count(); ++v)
    EXPECT_EQ(runs[v].load(), 1) << "node " << v;
}

TEST(GuardTest, HungWorkerGetsLivenessVerdictNotDeadlockReport) {
  // Satellite acceptance: a wedged worker must surface as a WorkerRecovery
  // (liveness failure, crashed=false) and the run must COMPLETE — never as
  // a spurious StallReport claiming a Lemma 2 deadlock that isn't there.
  const DagTask task = fig1_task();
  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.watchdog = std::chrono::milliseconds(8000);
  options.worker_liveness = std::chrono::milliseconds(100);
  options.respawn_backoff = std::chrono::milliseconds(5);
  NodeFault hang;
  hang.kind = FaultKind::kWorkerHang;
  const NodeId victim = first_member(task.blocking_regions()[0]);
  options.faults.set(victim, hang);

  std::vector<std::atomic<int>> runs(task.node_count());
  const ExecReport report =
      exec.run_blocking(options, [&](NodeId v) { ++runs[v]; });

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.nodes_executed, task.node_count());
  EXPECT_FALSE(report.stall.has_value())
      << "hang misdiagnosed as a deadlock: " << report.stall->describe();
  ASSERT_GE(report.worker_recoveries.size(), 1u);
  for (const WorkerRecovery& rec : report.worker_recoveries) {
    EXPECT_FALSE(rec.crashed);  // hung, detected via the stale heartbeat
    EXPECT_TRUE(rec.respawned);
  }
  EXPECT_EQ(pool.parked_workers(), 1u);
  for (NodeId v = 0; v < task.node_count(); ++v)
    EXPECT_EQ(runs[v].load(), 1) << "node " << v;
}

TEST(GuardTest, RespawnBudgetExhaustedYieldsDegradedReport) {
  // No respawn budget at all: losing a worker leaves the pool below the
  // size the analysis admitted. The guard must say so loudly (a
  // DegradedReport), never silently absorb the loss.
  const DagTask task = fig1_task();
  ThreadPool pool(2);
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.watchdog = std::chrono::milliseconds(1500);
  options.worker_liveness = std::chrono::milliseconds(100);
  options.max_worker_respawns = 0;
  NodeFault death;
  death.kind = FaultKind::kWorkerDeath;
  options.faults.set(first_member(task.blocking_regions()[0]), death);
  const ExecReport report = exec.run_blocking(options);

  ASSERT_TRUE(report.degraded.has_value());
  EXPECT_GE(report.degraded->workers_lost, 1u);
  EXPECT_EQ(report.degraded->respawns_used, 0u);
  EXPECT_EQ(report.workers_respawned, 0u);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.degraded->describe().find("below the size"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault plans are deterministic in the seed.

TEST(FaultPlanTest, SameSeedSamePlan) {
  const DagTask task = fig1c_task();
  FaultPlanParams params;
  params.p_overrun = 0.4;
  params.p_stall = 0.2;
  params.p_throw = 0.2;
  params.p_drop_notify = 0.5;
  const FaultPlan a = make_random_fault_plan(task, params, 123);
  const FaultPlan b = make_random_fault_plan(task, params, 123);
  ASSERT_EQ(a.faults().size(), b.faults().size());
  for (NodeId v = 0; v < task.node_count(); ++v) {
    const NodeFault* fa = a.find(v);
    const NodeFault* fb = b.find(v);
    ASSERT_EQ(fa == nullptr, fb == nullptr) << "node " << v;
    if (fa == nullptr) continue;
    EXPECT_EQ(fa->kind, fb->kind);
    EXPECT_EQ(fa->overrun_factor, fb->overrun_factor);
    EXPECT_EQ(fa->stall, fb->stall);
  }
}

TEST(FaultPlanTest, DropNotifyOnlyTargetsJoins) {
  const DagTask task = fig1c_task();
  FaultPlanParams params;
  params.p_drop_notify = 1.0;
  const FaultPlan plan = make_random_fault_plan(task, params, 5);
  EXPECT_EQ(plan.count(FaultKind::kDropNotify), task.blocking_regions().size());
  for (const auto& [v, f] : plan.faults()) {
    if (f.kind == FaultKind::kDropNotify) {
      EXPECT_EQ(task.type(v), model::NodeType::BJ);
    }
  }
}

TEST(FaultPlanTest, DescribeAndAccessors) {
  FaultPlan plan(9);
  EXPECT_TRUE(plan.empty());
  EXPECT_NE(describe(plan).find("clean"), std::string::npos);
  NodeFault f;
  f.kind = FaultKind::kThrow;
  plan.set(3, f);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.count(FaultKind::kThrow), 1u);
  EXPECT_NE(describe(plan).find("node 3 throw"), std::string::npos);
  f.kind = FaultKind::kNone;  // setting kNone clears the entry
  plan.set(3, f);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanTest, LethalFaultsOnlyTargetComputeNodes) {
  // worker_death / worker_hang fire at node start on a pool worker: only
  // NB and BC nodes are eligible (forks/joins run barrier machinery whose
  // loss the simulation does not model).
  const DagTask task = fig1c_task();
  FaultPlanParams params;
  params.p_worker_death = 1.0;
  const FaultPlan deaths = make_random_fault_plan(task, params, 11);
  EXPECT_GT(deaths.count(FaultKind::kWorkerDeath), 0u);
  params.p_worker_death = 0.0;
  params.p_worker_hang = 1.0;
  const FaultPlan hangs = make_random_fault_plan(task, params, 11);
  EXPECT_GT(hangs.count(FaultKind::kWorkerHang), 0u);
  for (const FaultPlan* plan : {&deaths, &hangs})
    for (const auto& [v, f] : plan->faults())
      EXPECT_TRUE(task.type(v) == model::NodeType::NB ||
                  task.type(v) == model::NodeType::BC)
          << "node " << v;
}

TEST(FaultPlanTest, ForkWithIsDrawOrderIndependent) {
  util::Rng a(42);
  (void)a.uniform(0.0, 1.0);  // advance the parent stream
  (void)a.uniform_int(0, 99);
  const util::Rng b(42);
  // fork_with depends only on (seed, salt), not on draws in between.
  EXPECT_EQ(a.fork_with(7).uniform_int(0, 1 << 30),
            b.fork_with(7).uniform_int(0, 1 << 30));
  EXPECT_NE(util::Rng(42).fork_with(7).uniform_int(0, 1 << 30),
            util::Rng(43).fork_with(7).uniform_int(0, 1 << 30));
}

}  // namespace
}  // namespace rtpool::exec
