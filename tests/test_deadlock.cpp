// Unit tests for the deadlock-freedom conditions of Section 3
// (Lemmas 1-3 applied through the l̄ lower bound and Eq. (3)).
#include <gtest/gtest.h>

#include "analysis/deadlock.h"
#include "model/builder.h"

namespace rtpool::analysis {
namespace {

using model::DagTask;
using model::DagTaskBuilder;
using model::NodeId;

DagTask one_region_task() {
  DagTaskBuilder b("one");
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(2.0, 3.0, {4.0, 5.0});
  b.add_edge(pre, fj.fork);
  b.period(100.0);
  return b.build();
}

struct TwoRegions {
  DagTask task;
  NodeId f1, c1a, c1b, j1;
  NodeId f2, c2a, c2b, j2;
};

TwoRegions two_region_task() {
  DagTaskBuilder b("two");
  const NodeId src = b.add_node(1.0);
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {2.0, 2.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {2.0, 2.0});
  const NodeId snk = b.add_node(1.0);
  b.add_edge(src, r1.fork);
  b.add_edge(src, r2.fork);
  b.add_edge(r1.join, snk);
  b.add_edge(r2.join, snk);
  b.period(100.0);
  return {b.build(), r1.fork, r1.children[0], r1.children[1], r1.join,
          r2.fork, r2.children[0], r2.children[1], r2.join};
}

TEST(GlobalDeadlockTest, NoBlockingForksAlwaysFree) {
  const DagTask t = model::make_fork_join_task("plain", 3, 1.0, 50.0, false);
  const auto check = check_deadlock_free_global(t, 1);
  EXPECT_TRUE(check.deadlock_free);
  EXPECT_EQ(check.max_forks, 0u);
  EXPECT_EQ(check.concurrency_bound, 1);
}

TEST(GlobalDeadlockTest, OneRegionNeedsTwoThreads) {
  const DagTask t = one_region_task();
  EXPECT_FALSE(check_deadlock_free_global(t, 1).deadlock_free);
  EXPECT_TRUE(check_deadlock_free_global(t, 2).deadlock_free);
  const auto c = check_deadlock_free_global(t, 1);
  EXPECT_EQ(c.concurrency_bound, 0);
  EXPECT_FALSE(c.witness.empty());
}

TEST(GlobalDeadlockTest, TwoConcurrentRegionsNeedThreeThreads) {
  const auto r = two_region_task();
  EXPECT_FALSE(check_deadlock_free_global(r.task, 2).deadlock_free);
  EXPECT_TRUE(check_deadlock_free_global(r.task, 3).deadlock_free);
}

TEST(Eq3Test, DetectsOwnForkColocation) {
  const DagTask t = one_region_task();
  // Everything on thread 0: the BC children share the thread of their fork.
  NodeAssignment all_zero{std::vector<ThreadId>(t.node_count(), 0)};
  const auto violation = find_eq3_violation(t, all_zero);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(t.type(violation->bc_node), model::NodeType::BC);
  EXPECT_EQ(t.type(violation->fork), model::NodeType::BF);
  EXPECT_EQ(violation->thread, 0u);
}

TEST(Eq3Test, AcceptsSegregatedAssignment) {
  const DagTask t = one_region_task();
  // Fork+join on thread 0, everything else on thread 1.
  NodeAssignment asg{std::vector<ThreadId>(t.node_count(), 1)};
  const auto& region = t.blocking_regions()[0];
  asg.thread_of[region.fork] = 0;
  asg.thread_of[region.join] = 0;
  EXPECT_FALSE(find_eq3_violation(t, asg).has_value());
}

TEST(Eq3Test, DetectsConcurrentForkColocation) {
  const auto r = two_region_task();
  const DagTask& t = r.task;
  // Region-1 members share a thread with the *other* region's fork f2.
  NodeAssignment asg{std::vector<ThreadId>(t.node_count(), 0)};
  asg.thread_of[r.f1] = 1;
  asg.thread_of[r.j1] = 1;
  asg.thread_of[r.f2] = 2;
  asg.thread_of[r.j2] = 2;
  asg.thread_of[r.c1a] = 2;  // shares thread 2 with f2: Eq. (3) violated
  asg.thread_of[r.c1b] = 0;
  asg.thread_of[r.c2a] = 0;
  asg.thread_of[r.c2b] = 0;
  const auto violation = find_eq3_violation(t, asg);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->bc_node, r.c1a);
  EXPECT_EQ(violation->fork, r.f2);
}

TEST(Eq3Test, SizeMismatchThrows) {
  const DagTask t = one_region_task();
  NodeAssignment bad{std::vector<ThreadId>(2, 0)};
  EXPECT_THROW(find_eq3_violation(t, bad), std::invalid_argument);
}

TEST(PartitionedDeadlockTest, RequiresBothConditions) {
  const auto r = two_region_task();
  const DagTask& t = r.task;

  // A good segregated assignment on 4 threads: f1@0, f2@1, the rest @2/@3.
  NodeAssignment good{std::vector<ThreadId>(t.node_count(), 2)};
  good.thread_of[r.f1] = 0;
  good.thread_of[r.j1] = 0;
  good.thread_of[r.f2] = 1;
  good.thread_of[r.j2] = 1;
  good.thread_of[r.c2a] = 3;
  good.thread_of[r.c2b] = 3;
  EXPECT_TRUE(check_deadlock_free_partitioned(t, 4, good).deadlock_free);

  // Same assignment but with only 2 pool threads claimed: l̄ = 0 breaks it
  // even though Eq. (3) holds (the lemma needs Eq. (1) excluded too).
  EXPECT_FALSE(check_deadlock_free_partitioned(t, 2, good).deadlock_free);

  // Enough threads but an Eq. (3) violation breaks it.
  NodeAssignment bad = good;
  bad.thread_of[r.c1a] = 1;  // member of region 1 on f2's thread
  const auto check = check_deadlock_free_partitioned(t, 4, bad);
  EXPECT_FALSE(check.deadlock_free);
  EXPECT_NE(check.witness.find("Eq. (3)"), std::string::npos);
}

TEST(WitnessTest, Lemma1BlockingChain) {
  const auto r = two_region_task();
  // b̄ = 2 (each BC sees the other region's fork plus its own): a 2-thread
  // pool can be exhausted, a 3-thread pool cannot.
  const auto witness = find_lemma1_witness(r.task, 2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->forks.size(), 2u);
  EXPECT_EQ(witness->pool_size, 2u);
  for (const NodeId f : witness->forks)
    EXPECT_EQ(r.task.type(f), model::NodeType::BF);  // X(v) holds forks only
  const std::string text = describe(*witness, r.task.name());
  EXPECT_NE(text.find("suspended BF node"), std::string::npos);
  EXPECT_FALSE(find_lemma1_witness(r.task, 3).has_value());
}

TEST(WitnessTest, WaitForCycleOnConcurrentRegions) {
  const auto r = two_region_task();
  const auto cycle = find_wait_for_cycle(r.task, 2);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->forks.size(), 2u);
  for (const NodeId f : cycle->forks)
    EXPECT_EQ(r.task.type(f), model::NodeType::BF);
  const std::string text = describe(*cycle, r.task.name());
  EXPECT_NE(text.find("wait-for cycle"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
  EXPECT_FALSE(find_wait_for_cycle(r.task, 3).has_value());
}

TEST(WitnessTest, WaitForCycleNeedsMutualConcurrency) {
  // Two *sequential* regions plus an NB branch spanning both: b̄ = 2 but
  // the forks are ordered, so no two of them can be suspended together.
  // Lemma 1 (chain) fires on m = 2, the Lemma 2 wait-for cycle does not.
  DagTaskBuilder b("strict");
  const NodeId src = b.add_node(1.0);
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  const NodeId spanning = b.add_node(10.0);
  const NodeId snk = b.add_node(1.0);
  b.add_edge(src, r1.fork);
  b.add_edge(r1.join, r2.fork);
  b.add_edge(r2.join, snk);
  b.add_edge(src, spanning);
  b.add_edge(spanning, snk);
  b.period(100.0);
  const DagTask t = b.build();

  EXPECT_TRUE(find_lemma1_witness(t, 2).has_value());
  EXPECT_FALSE(find_wait_for_cycle(t, 2).has_value());
  const auto cycle = find_wait_for_cycle(t, 1);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->forks.size(), 1u);
}

TEST(WitnessTest, Eq3AllViolationsReported) {
  const DagTask t = one_region_task();
  NodeAssignment all_zero{std::vector<ThreadId>(t.node_count(), 0)};
  const auto all = find_eq3_violations(t, all_zero);
  EXPECT_EQ(all.size(), 2u);  // both BC children share the fork's thread
  for (const auto& v : all) {
    EXPECT_EQ(t.type(v.bc_node), model::NodeType::BC);
    EXPECT_EQ(v.thread, 0u);
  }
}

TEST(TaskSetDeadlockTest, AppliesPerTask) {
  model::TaskSet ts(2);
  ts.add(one_region_task().with_priority(0));
  ts.add(model::make_fork_join_task("plain", 2, 1.0, 50.0, false).with_priority(1));
  EXPECT_TRUE(task_set_deadlock_free_global(ts));

  model::TaskSet tight(1);
  tight.add(one_region_task());
  EXPECT_FALSE(task_set_deadlock_free_global(tight));
}

TEST(TaskSetDeadlockTest, PartitionedWholeSet) {
  const auto r = two_region_task();
  model::TaskSet ts(4);
  ts.add(r.task);

  TaskSetPartition good;
  NodeAssignment asg{std::vector<ThreadId>(r.task.node_count(), 2)};
  asg.thread_of[r.f1] = 0;
  asg.thread_of[r.j1] = 0;
  asg.thread_of[r.f2] = 1;
  asg.thread_of[r.j2] = 1;
  asg.thread_of[r.c2a] = 3;
  asg.thread_of[r.c2b] = 3;
  good.per_task.push_back(asg);
  EXPECT_TRUE(task_set_deadlock_free_partitioned(ts, good));

  TaskSetPartition wrong_size;
  EXPECT_THROW(task_set_deadlock_free_partitioned(ts, wrong_size),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtpool::analysis
