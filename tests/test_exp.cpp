// Unit tests for the experiment harness (src/exp).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <sstream>

#include "analysis/partition.h"
#include "exp/necessity.h"
#include "exp/report.h"
#include "exp/report_json.h"
#include "exp/schedulability.h"
#include "model/builder.h"

namespace rtpool::exp {
namespace {

using model::DagTaskBuilder;
using model::NodeId;
using model::TaskSet;

/// A trivially schedulable set: one tiny task on many cores.
TaskSet easy_set() {
  TaskSet ts(8);
  DagTaskBuilder b("t");
  b.add_node(1.0);
  b.period(1000.0);
  ts.add(b.build());
  return ts;
}

/// A set only the baseline accepts: a blocking region with l̄ = 0.
TaskSet limited_only_set() {
  TaskSet ts(1);
  DagTaskBuilder b("t");
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  b.add_edge(pre, fj.fork);
  b.period(1000.0);
  ts.add(b.build());
  return ts;
}

TEST(EvaluateTaskSetTest, GlobalVerdicts) {
  const auto easy = evaluate_task_set(Scheduler::kGlobal, easy_set());
  EXPECT_TRUE(easy.baseline);
  EXPECT_TRUE(easy.proposed);

  const auto limited = evaluate_task_set(Scheduler::kGlobal, limited_only_set());
  EXPECT_TRUE(limited.baseline);   // [14] ignores the blocked thread
  EXPECT_FALSE(limited.proposed);  // Section 4.1 rejects (l̄ = 0)
}

TEST(EvaluateTaskSetTest, PartitionedVerdicts) {
  const auto easy = evaluate_task_set(Scheduler::kPartitioned, easy_set());
  EXPECT_TRUE(easy.baseline);
  EXPECT_TRUE(easy.proposed);

  // With m = 1 Algorithm 1 cannot segregate the BF from its children.
  const auto limited =
      evaluate_task_set(Scheduler::kPartitioned, limited_only_set());
  EXPECT_TRUE(limited.baseline);
  EXPECT_FALSE(limited.proposed);
}

TEST(EvaluatePointTest, CountsAreConsistent) {
  PointConfig config;
  config.gen.cores = 8;
  config.gen.task_count = 3;
  config.gen.total_utilization = 2.0;
  config.trials = 25;
  util::Rng rng(1);
  const PointResult r = evaluate_point(Scheduler::kGlobal, config, rng);
  EXPECT_EQ(r.accepted, 25u);
  EXPECT_LE(r.baseline_schedulable, r.accepted);
  EXPECT_LE(r.proposed_schedulable, r.accepted);
  // The proposed test can never accept a set the baseline rejects.
  EXPECT_LE(r.proposed_schedulable, r.baseline_schedulable);
  EXPECT_GE(r.baseline_ratio(), r.proposed_ratio());
  EXPECT_FALSE(r.attempts_exhausted);
}

TEST(EvaluatePointTest, FilterMakesBaselineExact) {
  PointConfig config;
  config.gen.cores = 8;
  config.gen.task_count = 3;
  config.gen.total_utilization = 2.0;
  config.filter_baseline = true;
  config.trials = 20;
  util::Rng rng(2);
  const PointResult r = evaluate_point(Scheduler::kGlobal, config, rng);
  EXPECT_EQ(r.accepted, 20u);
  EXPECT_EQ(r.baseline_schedulable, 20u);  // by construction of the filter
  EXPECT_DOUBLE_EQ(r.baseline_ratio(), 1.0);
}

TEST(EvaluatePointTest, AttemptBudgetRespected) {
  PointConfig config;
  config.gen.cores = 2;
  config.gen.task_count = 2;
  config.gen.total_utilization = 3.9;  // mostly unschedulable
  config.filter_baseline = true;
  config.trials = 1000;
  config.max_attempts = 50;
  util::Rng rng(3);
  const PointResult r = evaluate_point(Scheduler::kGlobal, config, rng);
  EXPECT_TRUE(r.attempts_exhausted);
  EXPECT_LE(r.accepted + r.discarded + r.generation_errors, 50u);
}

TEST(EvaluatePointTest, EmptyRatioIsZero) {
  PointResult r;
  EXPECT_DOUBLE_EQ(r.baseline_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(r.proposed_ratio(), 0.0);
}

TEST(NecessityTest, EasySetPasses) {
  EXPECT_TRUE(passes_simulation(easy_set(), SimPolicy::kGlobal, std::nullopt));
}

TEST(NecessityTest, OverloadFailsAndJitterScenariosRun) {
  // U > m: some job must miss in the synchronous scenario.
  TaskSet ts(1);
  {
    DagTaskBuilder b("a");
    b.add_node(8.0);
    b.period(10.0).priority(0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("c");
    b.add_node(8.0);
    b.period(10.0).priority(1);
    ts.add(b.build());
  }
  EXPECT_FALSE(passes_simulation(ts, SimPolicy::kGlobal, std::nullopt));

  NecessityOptions options;
  options.jitter_scenarios = 3;
  EXPECT_FALSE(passes_simulation(ts, SimPolicy::kGlobal, std::nullopt, options));
}

TEST(NecessityTest, DeadlockCountsAsFailure) {
  EXPECT_FALSE(passes_simulation(limited_only_set(), SimPolicy::kGlobal,
                                 std::nullopt));
}

TEST(NecessityTest, PartitionedRequiresPartition) {
  EXPECT_THROW(
      passes_simulation(easy_set(), SimPolicy::kPartitioned, std::nullopt),
      std::invalid_argument);

  const TaskSet ts = easy_set();
  const auto wf = analysis::partition_worst_fit(ts);
  ASSERT_TRUE(wf.success());
  EXPECT_TRUE(passes_simulation(ts, SimPolicy::kPartitioned, *wf.partition));
}

TEST(ReportJsonTest, ContainsEveryAnalysis) {
  std::ostringstream os;
  write_analysis_report(os, limited_only_set());
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
  for (const char* section :
       {"\"tasks\":[", "\"global_baseline\":", "\"global_limited\":",
        "\"global_limited_antichain\":", "\"partitioned_worst_fit\":",
        "\"partitioned_algorithm1\":", "\"federated_classic\":",
        "\"federated_limited\":", "\"concurrency_lower_bound\":",
        "\"max_affecting_forks\":"}) {
    EXPECT_NE(out.find(section), std::string::npos) << section;
  }
  // The limited-only set: baseline accepts, limited rejects with inf bound.
  EXPECT_NE(out.find("\"response_time\":\"inf\""), std::string::npos);
}

TEST(ReportJsonTest, ReportsAlgorithm1Failure) {
  // Single-core blocking task: Algorithm 1 must fail, and the report says
  // why instead of omitting the section.
  std::ostringstream os;
  write_analysis_report(os, limited_only_set());
  const std::string out = os.str();
  EXPECT_NE(out.find("\"partition_found\":false"), std::string::npos);
  EXPECT_NE(out.find("\"failure\":"), std::string::npos);
}

TEST(ReportTest, CsvRoundTrip) {
  std::vector<SweepRow> rows(2);
  rows[0].x = 1;
  rows[0].global.accepted = 10;
  rows[0].global.baseline_schedulable = 10;
  rows[0].global.proposed_schedulable = 5;
  rows[1].x = 2;
  const auto path =
      std::filesystem::temp_directory_path() / "rtpool_sweep_test.csv";
  write_sweep_csv(path.string(), "x", rows);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "x,global_baseline,global_proposed,partitioned_baseline,"
            "partitioned_proposed,global_accepted,partitioned_accepted,"
            "global_discarded,partitioned_discarded");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 8), "1,1,0.5,");
  std::filesystem::remove(path);

  // Empty path: silently skipped.
  write_sweep_csv("", "x", rows);
  // Console printing must not crash.
  print_sweep("test sweep", "x", rows);
}

}  // namespace
}  // namespace rtpool::exp
