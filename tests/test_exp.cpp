// Unit tests for the experiment harness (src/exp).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "analysis/partition.h"
#include "exp/necessity.h"
#include "exp/report.h"
#include "exp/report_json.h"
#include "exp/schedulability.h"
#include "model/builder.h"
#include "util/json.h"

namespace rtpool::exp {
namespace {

using model::DagTaskBuilder;
using model::NodeId;
using model::TaskSet;

/// A trivially schedulable set: one tiny task on many cores.
TaskSet easy_set() {
  TaskSet ts(8);
  DagTaskBuilder b("t");
  b.add_node(1.0);
  b.period(1000.0);
  ts.add(b.build());
  return ts;
}

/// A set only the baseline accepts: a blocking region with l̄ = 0.
TaskSet limited_only_set() {
  TaskSet ts(1);
  DagTaskBuilder b("t");
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  b.add_edge(pre, fj.fork);
  b.period(1000.0);
  ts.add(b.build());
  return ts;
}

TEST(EvaluateTaskSetTest, GlobalVerdicts) {
  const auto easy = evaluate_task_set(Scheduler::kGlobal, easy_set());
  EXPECT_TRUE(easy.baseline);
  EXPECT_TRUE(easy.proposed);

  const auto limited = evaluate_task_set(Scheduler::kGlobal, limited_only_set());
  EXPECT_TRUE(limited.baseline);   // [14] ignores the blocked thread
  EXPECT_FALSE(limited.proposed);  // Section 4.1 rejects (l̄ = 0)
}

TEST(EvaluateTaskSetTest, PartitionedVerdicts) {
  const auto easy = evaluate_task_set(Scheduler::kPartitioned, easy_set());
  EXPECT_TRUE(easy.baseline);
  EXPECT_TRUE(easy.proposed);

  // With m = 1 Algorithm 1 cannot segregate the BF from its children.
  const auto limited =
      evaluate_task_set(Scheduler::kPartitioned, limited_only_set());
  EXPECT_TRUE(limited.baseline);
  EXPECT_FALSE(limited.proposed);
}

TEST(EvaluatePointTest, CountsAreConsistent) {
  PointConfig config;
  config.gen.cores = 8;
  config.gen.task_count = 3;
  config.gen.total_utilization = 2.0;
  config.trials = 25;
  util::Rng rng(1);
  const PointResult r = evaluate_point(Scheduler::kGlobal, config, rng);
  EXPECT_EQ(r.accepted, 25u);
  EXPECT_LE(r.baseline_schedulable, r.accepted);
  EXPECT_LE(r.proposed_schedulable, r.accepted);
  // The proposed test can never accept a set the baseline rejects.
  EXPECT_LE(r.proposed_schedulable, r.baseline_schedulable);
  EXPECT_GE(r.baseline_ratio(), r.proposed_ratio());
  EXPECT_FALSE(r.attempts_exhausted);
}

TEST(EvaluatePointTest, FilterMakesBaselineExact) {
  PointConfig config;
  config.gen.cores = 8;
  config.gen.task_count = 3;
  config.gen.total_utilization = 2.0;
  config.filter_baseline = true;
  config.trials = 20;
  util::Rng rng(2);
  const PointResult r = evaluate_point(Scheduler::kGlobal, config, rng);
  EXPECT_EQ(r.accepted, 20u);
  EXPECT_EQ(r.baseline_schedulable, 20u);  // by construction of the filter
  EXPECT_DOUBLE_EQ(r.baseline_ratio(), 1.0);
}

TEST(EvaluatePointTest, AttemptBudgetRespected) {
  PointConfig config;
  config.gen.cores = 2;
  config.gen.task_count = 2;
  config.gen.total_utilization = 3.9;  // mostly unschedulable
  config.filter_baseline = true;
  config.trials = 1000;
  config.max_attempts = 50;
  util::Rng rng(3);
  const PointResult r = evaluate_point(Scheduler::kGlobal, config, rng);
  EXPECT_TRUE(r.attempts_exhausted);
  EXPECT_LE(r.accepted + r.discarded + r.generation_errors, 50u);
}

TEST(EvaluatePointTest, EmptyRatioIsZero) {
  PointResult r;
  EXPECT_DOUBLE_EQ(r.baseline_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(r.proposed_ratio(), 0.0);
}

// ---------- ExperimentEngine: parallel determinism & accounting ----------
//
// NOTE for these tests: the build/CI box may have a single core, so they
// assert bit-identical *results* across thread counts, never any speedup.

TEST(ExperimentEngineTest, ResultsAreThreadCountInvariant) {
  for (const bool filter : {false, true}) {
    PointConfig config;
    config.gen.cores = 8;
    config.gen.task_count = 3;
    config.gen.total_utilization = 2.0;
    config.filter_baseline = filter;
    config.trials = 30;
    const util::Rng rng(7);

    ExperimentEngine sequential(1);
    ExperimentEngine parallel4(4, /*clamp_to_hardware=*/false);
    const PointResult a = sequential.evaluate_point(Scheduler::kGlobal, config, rng);
    const PointResult b = parallel4.evaluate_point(Scheduler::kGlobal, config, rng);
    EXPECT_EQ(a.accepted, 30u);
    EXPECT_TRUE(a == b) << "filter=" << filter;
    ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
    for (std::size_t i = 0; i < a.verdicts.size(); ++i)
      EXPECT_TRUE(a.verdicts[i] == b.verdicts[i]) << "set " << i;

    // The pool is reused across points inside one engine: a second identical
    // point gives the same result again (per-attempt seeding, no state).
    const PointResult c = parallel4.evaluate_point(Scheduler::kGlobal, config, rng);
    EXPECT_TRUE(a == c);
  }
}

TEST(ExperimentEngineTest, PartitionedArmIsThreadCountInvariant) {
  PointConfig config;
  config.gen.cores = 4;
  config.gen.task_count = 2;
  config.gen.total_utilization = 1.0;
  config.trials = 10;
  const util::Rng rng(11);
  ExperimentEngine sequential(1);
  ExperimentEngine parallel3(3, /*clamp_to_hardware=*/false);
  const PointResult a =
      sequential.evaluate_point(Scheduler::kPartitioned, config, rng);
  const PointResult b =
      parallel3.evaluate_point(Scheduler::kPartitioned, config, rng);
  EXPECT_TRUE(a == b);
}

TEST(ExperimentEngineTest, FreeFunctionMatchesEngine) {
  PointConfig config;
  config.gen.cores = 8;
  config.gen.task_count = 3;
  config.gen.total_utilization = 2.0;
  config.trials = 10;
  util::Rng rng(13);
  const PointResult a = evaluate_point(Scheduler::kGlobal, config, rng);
  ExperimentEngine engine(2, /*clamp_to_hardware=*/false);
  const PointResult b = engine.evaluate_point(Scheduler::kGlobal, config, rng);
  EXPECT_TRUE(a == b);
}

TEST(ExperimentEngineTest, ParallelAttemptAccountingMatchesSequential) {
  // A nearly-unschedulable filtered point: the budget runs out, and every
  // consumed attempt must be accounted as accepted, discarded, or a
  // generation error — identically for any thread count.
  PointConfig config;
  config.gen.cores = 2;
  config.gen.task_count = 2;
  config.gen.total_utilization = 3.9;
  config.filter_baseline = true;
  config.trials = 1000;
  config.max_attempts = 50;
  const util::Rng rng(3);

  ExperimentEngine sequential(1);
  ExperimentEngine parallel4(4, /*clamp_to_hardware=*/false);
  const PointResult a = sequential.evaluate_point(Scheduler::kGlobal, config, rng);
  const PointResult b = parallel4.evaluate_point(Scheduler::kGlobal, config, rng);
  EXPECT_TRUE(a.attempts_exhausted);
  EXPECT_EQ(a.accepted + a.discarded + a.generation_errors, 50u);
  EXPECT_TRUE(a == b);
}

TEST(ExperimentEngineTest, GenerationErrorsCountedUnderParallelPath) {
  // A blocking window wider than the small graphs can host: generation
  // fails for some attempts, which must be counted, not dropped, by the
  // speculative path.
  PointConfig config;
  config.gen.cores = 8;
  config.gen.task_count = 2;
  config.gen.total_utilization = 1.0;
  config.gen.nfj.min_branches = 2;
  config.gen.nfj.max_branches = 3;
  config.gen.blocking_window = gen::BlockingWindow{6, 6};
  config.trials = 20;
  config.max_attempts = 200;
  const util::Rng rng(17);

  ExperimentEngine sequential(1);
  ExperimentEngine parallel4(4, /*clamp_to_hardware=*/false);
  const PointResult a = sequential.evaluate_point(Scheduler::kGlobal, config, rng);
  const PointResult b = parallel4.evaluate_point(Scheduler::kGlobal, config, rng);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.generation_errors, b.generation_errors);
}

TEST(ExperimentEngineTest, MapTrialsFoldsInTrialOrder) {
  ExperimentEngine engine(4, /*clamp_to_hardware=*/false);
  std::vector<std::size_t> order;
  std::vector<double> parallel_draws(20, 0.0);
  engine.map_trials(
      20, util::Rng(5),
      [](std::size_t /*i*/, util::Rng& r) { return r.uniform(0.0, 1.0); },
      [&](std::size_t i, double v) {
        order.push_back(i);
        parallel_draws[i] = v;
      });
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);

  ExperimentEngine sequential(1);
  std::vector<double> sequential_draws(20, 0.0);
  sequential.map_trials(
      20, util::Rng(5),
      [](std::size_t /*i*/, util::Rng& r) { return r.uniform(0.0, 1.0); },
      [&](std::size_t i, double v) { sequential_draws[i] = v; });
  EXPECT_EQ(parallel_draws, sequential_draws);
}

TEST(ExperimentEngineTest, EvalExceptionRethrownAtItsAttemptIndex) {
  // A worker-side exception surfaces on the calling thread, after the
  // commits of every earlier attempt and none of the later ones — the same
  // observable order as the sequential loop.
  for (const int threads : {1, 4}) {
    ExperimentEngine engine(threads, /*clamp_to_hardware=*/false);
    std::vector<std::size_t> folded;
    EXPECT_THROW(
        engine.map_trials(
            8, util::Rng(1),
            [](std::size_t i, util::Rng&) -> int {
              if (i == 3) throw std::runtime_error("attempt 3 failed");
              return static_cast<int>(i);
            },
            [&](std::size_t i, int) { folded.push_back(i); }),
        std::runtime_error);
    EXPECT_EQ(folded, (std::vector<std::size_t>{0, 1, 2})) << threads;
  }
}

TEST(ExperimentEngineTest, RunAttemptsStopsAtNeededCommits) {
  // Commit every other attempt: 10 commits need exactly 19 attempts, and
  // the attempt-ordered stop discards any over-speculated evaluations.
  ExperimentEngine engine(4, /*clamp_to_hardware=*/false);
  std::vector<std::size_t> committed;
  const AttemptLoopStats stats = engine.run_attempts(
      10, 1000, util::Rng(2),
      [](std::size_t i, util::Rng&) { return i; },
      [&](std::size_t i, std::size_t) {
        if (i % 2 != 0) return false;
        committed.push_back(i);
        return true;
      });
  EXPECT_FALSE(stats.exhausted);
  EXPECT_EQ(stats.attempts, 19u);
  EXPECT_EQ(committed.size(), 10u);
  for (std::size_t i = 0; i < committed.size(); ++i)
    EXPECT_EQ(committed[i], 2 * i);
}

TEST(ExperimentEngineTest, WorkerCountClampsToHardware) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int hw_threads = hw == 0 ? 1 : static_cast<int>(hw);

  ExperimentEngine clamped(1000);
  EXPECT_EQ(clamped.threads(), 1000);          // requested value is reported
  EXPECT_EQ(clamped.workers(), std::min(1000, hw_threads));

  ExperimentEngine unclamped(3, /*clamp_to_hardware=*/false);
  EXPECT_EQ(unclamped.threads(), 3);
  EXPECT_EQ(unclamped.workers(), 3);

  // Clamped and unclamped engines agree bit-for-bit (thread-count
  // invariance covers the effective worker count too).
  PointConfig config;
  config.gen.cores = 4;
  config.gen.task_count = 2;
  config.gen.total_utilization = 1.0;
  config.trials = 10;
  const util::Rng rng(23);
  const PointResult a = clamped.evaluate_point(Scheduler::kGlobal, config, rng);
  const PointResult b = unclamped.evaluate_point(Scheduler::kGlobal, config, rng);
  EXPECT_TRUE(a == b);
}

TEST(NecessityTest, EasySetPasses) {
  EXPECT_TRUE(passes_simulation(easy_set(), SimPolicy::kGlobal, std::nullopt));
}

TEST(NecessityTest, OverloadFailsAndJitterScenariosRun) {
  // U > m: some job must miss in the synchronous scenario.
  TaskSet ts(1);
  {
    DagTaskBuilder b("a");
    b.add_node(8.0);
    b.period(10.0).priority(0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("c");
    b.add_node(8.0);
    b.period(10.0).priority(1);
    ts.add(b.build());
  }
  EXPECT_FALSE(passes_simulation(ts, SimPolicy::kGlobal, std::nullopt));

  NecessityOptions options;
  options.jitter_scenarios = 3;
  EXPECT_FALSE(passes_simulation(ts, SimPolicy::kGlobal, std::nullopt, options));
}

TEST(NecessityTest, DeadlockCountsAsFailure) {
  EXPECT_FALSE(passes_simulation(limited_only_set(), SimPolicy::kGlobal,
                                 std::nullopt));
}

TEST(NecessityTest, PartitionedRequiresPartition) {
  EXPECT_THROW(
      passes_simulation(easy_set(), SimPolicy::kPartitioned, std::nullopt),
      std::invalid_argument);

  const TaskSet ts = easy_set();
  const auto wf = analysis::partition_worst_fit(ts);
  ASSERT_TRUE(wf.success());
  EXPECT_TRUE(passes_simulation(ts, SimPolicy::kPartitioned, *wf.partition));
}

TEST(ReportJsonTest, ContainsEveryAnalysis) {
  std::ostringstream os;
  write_analysis_report(os, limited_only_set());
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
  for (const char* section :
       {"\"tasks\":[", "\"global_baseline\":", "\"global_limited\":",
        "\"global_limited_antichain\":", "\"partitioned_worst_fit\":",
        "\"partitioned_algorithm1\":", "\"federated_classic\":",
        "\"federated_limited\":", "\"concurrency_lower_bound\":",
        "\"max_affecting_forks\":"}) {
    EXPECT_NE(out.find(section), std::string::npos) << section;
  }
  // The limited-only set: baseline accepts, limited rejects with inf bound.
  EXPECT_NE(out.find("\"response_time\":\"inf\""), std::string::npos);
}

TEST(ReportJsonTest, RoundTripsThroughJsonParser) {
  // write → util::parse_json → compare: the exported report is valid JSON
  // whose parsed content matches the analyses it claims to contain.
  std::ostringstream os;
  write_analysis_report(os, easy_set());
  const util::JsonValue doc = util::parse_json(os.str());
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.contains("tasks"));
  EXPECT_EQ(doc.at("tasks").as_array().size(), 1u);
  EXPECT_TRUE(doc.at("global_baseline").at("schedulable").as_bool());
  EXPECT_TRUE(doc.at("global_limited").at("schedulable").as_bool());

  // The writer is deterministic: a second export of the same set is
  // byte-identical (what lets CI diff committed reports).
  std::ostringstream os2;
  write_analysis_report(os2, easy_set());
  EXPECT_EQ(os.str(), os2.str());

  // Non-finite bounds survive the trip as the writer's "inf" strings.
  std::ostringstream os3;
  write_analysis_report(os3, limited_only_set());
  const util::JsonValue limited = util::parse_json(os3.str());
  ASSERT_TRUE(limited.is_object());
  EXPECT_FALSE(limited.at("global_limited").at("schedulable").as_bool());
}

TEST(ReportJsonTest, ReportsAlgorithm1Failure) {
  // Single-core blocking task: Algorithm 1 must fail, and the report says
  // why instead of omitting the section.
  std::ostringstream os;
  write_analysis_report(os, limited_only_set());
  const std::string out = os.str();
  EXPECT_NE(out.find("\"partition_found\":false"), std::string::npos);
  EXPECT_NE(out.find("\"failure\":"), std::string::npos);
}

TEST(ReportTest, CsvRoundTrip) {
  std::vector<SweepRow> rows(2);
  rows[0].x = 1;
  rows[0].global.accepted = 10;
  rows[0].global.baseline_schedulable = 10;
  rows[0].global.proposed_schedulable = 5;
  rows[1].x = 2;
  const auto path =
      std::filesystem::temp_directory_path() / "rtpool_sweep_test.csv";
  write_sweep_csv(path.string(), "x", rows);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "x,global_baseline,global_proposed,partitioned_baseline,"
            "partitioned_proposed,global_accepted,partitioned_accepted,"
            "global_discarded,partitioned_discarded");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 8), "1,1,0.5,");
  std::filesystem::remove(path);

  // Empty path: silently skipped.
  write_sweep_csv("", "x", rows);
  // Console printing must not crash.
  print_sweep("test sweep", "x", rows);
}

}  // namespace
}  // namespace rtpool::exp
