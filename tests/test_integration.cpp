// End-to-end integration tests: whole pipelines across modules.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "analysis/deadlock.h"
#include "analysis/global_rta.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "exec/graph_executor.h"
#include "exec/thread_pool.h"
#include "exp/report_json.h"
#include "exp/schedulability.h"
#include "gen/taskset_generator.h"
#include "model/io.h"
#include "sim/engine.h"
#include "sim/trace_json.h"

namespace rtpool {
namespace {

/// generate -> save -> load -> analyze: the round trip must preserve every
/// analysis verdict bit-for-bit (the text format stores full precision).
TEST(PipelineTest, SerializationPreservesVerdicts) {
  util::Rng rng(2019);
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 5;
  params.total_utilization = 3.0;
  const model::TaskSet original = gen::generate_task_set(params, rng);

  std::stringstream ss;
  model::write_task_set(ss, original);
  const model::TaskSet loaded = model::read_task_set(ss);

  for (auto scheduler : {exp::Scheduler::kGlobal, exp::Scheduler::kPartitioned}) {
    const auto a = exp::evaluate_task_set(scheduler, original);
    const auto b = exp::evaluate_task_set(scheduler, loaded);
    EXPECT_EQ(a.baseline, b.baseline);
    EXPECT_EQ(a.proposed, b.proposed);
  }

  analysis::GlobalRtaOptions limited;
  limited.limited_concurrency = true;
  const auto ra = analysis::analyze_global(original, limited);
  const auto rb = analysis::analyze_global(loaded, limited);
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.per_task[i].response_time, rb.per_task[i].response_time);
}

/// generate -> Algorithm 1 -> RTA-accepted -> simulate with the SAME
/// partition, including sporadic arrivals: no miss, no deadlock, and the
/// chrome trace of the run is well formed.
TEST(PipelineTest, AnalyzedPartitionSurvivesSimulationAndExports) {
  util::Rng rng(7);
  gen::TaskSetParams params;
  params.cores = 4;
  params.task_count = 3;
  params.total_utilization = 1.2;

  int checked = 0;
  for (int trial = 0; trial < 20 && checked < 5; ++trial) {
    const model::TaskSet ts = gen::generate_task_set(params, rng);
    const auto alg1 = analysis::partition_algorithm1(ts);
    if (!alg1.success()) continue;
    const auto rta = analysis::analyze_partitioned(ts, *alg1.partition);
    if (!rta.schedulable) continue;
    ++checked;

    sim::SimConfig cfg;
    cfg.policy = sim::SchedulingPolicy::kPartitioned;
    cfg.partition = *alg1.partition;
    cfg.collect_trace = true;
    cfg.release_jitter_frac = 0.3;
    cfg.seed = static_cast<std::uint64_t>(trial);
    double max_period = 0.0;
    for (const auto& t : ts.tasks()) max_period = std::max(max_period, t.period());
    cfg.horizon = 6.0 * max_period;

    const auto run = sim::simulate(ts, cfg);
    EXPECT_FALSE(run.deadlock.has_value()) << "trial=" << trial;
    EXPECT_FALSE(run.any_deadline_miss) << "trial=" << trial;

    std::ostringstream os;
    sim::write_chrome_trace(os, ts, run);
    EXPECT_EQ(os.str().front(), '{');
    EXPECT_EQ(os.str().back(), '}');
  }
  EXPECT_GE(checked, 1);
}

/// The analysis report of a generated set agrees with direct analysis calls
/// on headline verdicts (spot-check via substring matching).
TEST(PipelineTest, JsonReportMatchesDirectAnalysis) {
  util::Rng rng(99);
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 4;
  params.total_utilization = 2.0;
  const model::TaskSet ts = gen::generate_task_set(params, rng);

  std::ostringstream os;
  exp::write_analysis_report(os, ts);
  const std::string report = os.str();

  analysis::GlobalRtaOptions baseline;
  const bool base_ok = analysis::analyze_global(ts, baseline).schedulable;
  const std::string needle = std::string("\"global_baseline\":{\"schedulable\":") +
                             (base_ok ? "true" : "false");
  EXPECT_NE(report.find(needle), std::string::npos) << report.substr(0, 400);
}

/// Analysis-accepted task executed on REAL threads: generate until the
/// limited-concurrency test accepts a single-task set on m workers, then
/// run it with blocking semantics on an m-worker pool — it must finish.
TEST(PipelineTest, AnalysisAcceptedTaskRunsOnRealPool) {
  util::Rng rng(5);
  gen::TaskSetParams params;
  params.cores = 4;
  params.task_count = 1;
  params.total_utilization = 0.5;

  for (int trial = 0; trial < 5; ++trial) {
    const model::TaskSet ts = gen::generate_task_set(params, rng);
    analysis::GlobalRtaOptions limited;
    limited.limited_concurrency = true;
    if (!analysis::analyze_global(ts, limited).schedulable) continue;

    exec::ThreadPool pool(ts.core_count());
    exec::GraphExecutor executor(pool, ts.task(0));
    exec::ExecOptions options;
    options.watchdog = std::chrono::seconds(10);
    const auto report = executor.run_blocking(options);
    EXPECT_TRUE(report.completed) << "trial=" << trial;
    EXPECT_EQ(report.nodes_executed, ts.task(0).node_count());
  }
}

/// Robustness: random single-character mutations of a valid .taskset file
/// must either parse into a valid set or throw ParseError/ModelError —
/// never crash or produce an invalid task object.
class IoMutationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoMutationTest, MutatedInputNeverCrashes) {
  util::Rng rng(GetParam());
  gen::TaskSetParams params;
  params.cores = 4;
  params.task_count = 2;
  params.total_utilization = 1.0;
  const model::TaskSet ts = gen::generate_task_set(params, rng);
  std::stringstream ss;
  model::write_task_set(ss, ts);
  std::string text = ss.str();

  for (int mutation = 0; mutation < 50; ++mutation) {
    std::string mutated = text;
    const std::size_t pos = rng.index(mutated.size());
    const char replacement = static_cast<char>(rng.uniform_int(32, 126));
    mutated[pos] = replacement;
    std::stringstream in(mutated);
    try {
      const model::TaskSet parsed = model::read_task_set(in);
      // If it parsed, the resulting tasks are fully validated objects:
      // exercising an analysis must not blow up.
      (void)analysis::task_set_deadlock_free_global(parsed);
    } catch (const model::ParseError&) {
    } catch (const model::ModelError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoMutationTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace rtpool
