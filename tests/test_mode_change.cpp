// Tests for the online mode-change controller (exec/mode_change.h):
// admission / eviction / resize decision paths, certificate-carrying
// rejections, the warm-equals-cold property, the runtime cross-check
// against the Lemma 2 witness, drain semantics and log determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/cert_check.h"
#include "analysis/deadlock.h"
#include "exec/mode_change.h"
#include "exec/thread_pool.h"
#include "exp/elastic_scenarios.h"
#include "model/builder.h"

namespace rtpool::exec {
namespace {

using model::DagTask;
using model::DagTaskBuilder;
using model::NodeId;

/// A light parallel task: trivially schedulable on any mode used here.
DagTask light_task(const std::string& name, int priority) {
  DagTaskBuilder b(name);
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(1.0, 1.0, {1.0, 1.0});
  const NodeId post = b.add_node(1.0);
  b.add_edge(pre, fj.fork);
  b.add_edge(fj.join, post);
  b.period(100.0);
  return b.build().with_priority(priority);
}

/// A task whose volume exceeds its deadline times any small core count:
/// no analyzer can prove it schedulable.
DagTask overload_task(const std::string& name, int priority) {
  DagTaskBuilder b(name);
  NodeId prev = b.add_node(200.0);
  for (int i = 0; i < 3; ++i) {
    const NodeId next = b.add_node(200.0);
    b.add_edge(prev, next);
    prev = next;
  }
  b.period(100.0);
  return b.build().with_priority(priority);
}

/// Figure 1(c): two concurrent blocking regions — the Lemma 2 deadlock on
/// two workers, fine on three.
DagTask fig1c_task(int priority) {
  DagTaskBuilder b("fig1c");
  const NodeId src = b.add_node(1.0);
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {1.0, 1.0, 1.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {1.0, 1.0, 1.0});
  const NodeId snk = b.add_node(1.0);
  b.add_edge(src, r1.fork);
  b.add_edge(src, r2.fork);
  b.add_edge(r1.join, snk);
  b.add_edge(r2.join, snk);
  b.period(100.0);
  return b.build().with_priority(priority);
}

ModeChangeConfig small_config(std::size_t cores = 4) {
  ModeChangeConfig config;
  config.analyzer = "global-limited";
  config.cores = cores;
  return config;
}

// ---------------------------------------------------------------------------
// Decision paths.

TEST(ModeChangeTest, AdmitSchedulableTaskCommits) {
  ModeChangeController controller(small_config());
  const ModeTransition tr = controller.admit(light_task("tau0", 0));
  EXPECT_TRUE(tr.accepted);
  EXPECT_TRUE(tr.committed);
  EXPECT_TRUE(tr.cross_check_ok);
  EXPECT_TRUE(tr.reject_reason.empty());
  EXPECT_TRUE(tr.report.schedulable);
  EXPECT_EQ(tr.kind, ModeRequestKind::kAdmit);
  EXPECT_EQ(tr.detail, "tau0");
  EXPECT_EQ(tr.workers_after, 4u);

  const ModeSnapshot mode = controller.mode();
  EXPECT_EQ(mode.task_set->size(), 1u);
  EXPECT_EQ(mode.workers, 4u);
  EXPECT_EQ(mode.version, 2u);  // initial empty mode was version 1
}

TEST(ModeChangeTest, RejectedAdmissionCarriesCheckableCertificate) {
  ModeChangeController controller(small_config(2));
  ASSERT_TRUE(controller.admit(light_task("tau0", 0)).committed);
  const std::uint64_t version_before = controller.mode().version;

  const ModeTransition tr = controller.admit(overload_task("heavy", 1));
  EXPECT_FALSE(tr.accepted);
  EXPECT_FALSE(tr.committed);
  EXPECT_FALSE(tr.reject_reason.empty());
  EXPECT_FALSE(tr.report.schedulable);

  // The rejection is not just a verdict: it carries the analyzer's
  // machine-checkable witness, re-validatable with zero shared code.
  ASSERT_NE(tr.report.certificate, nullptr);
  ASSERT_NE(tr.proposed, nullptr);
  const analysis::cert::CheckResult check =
      analysis::cert::check_certificate(*tr.proposed, *tr.report.certificate);
  EXPECT_TRUE(check.ok()) << "certificate failed independent re-validation";
  EXPECT_GT(check.claims_checked, 0u);

  // The old mode stayed committed, heavy is not in it.
  const ModeSnapshot mode = controller.mode();
  EXPECT_EQ(mode.version, version_before);
  EXPECT_EQ(mode.task_set->size(), 1u);
  EXPECT_EQ(mode.task_set->task(0).name(), "tau0");
}

TEST(ModeChangeTest, EvictPaths) {
  ModeChangeController controller(small_config());
  ASSERT_TRUE(controller.admit(light_task("tau0", 0)).committed);

  const ModeTransition bogus = controller.evict("never-admitted");
  EXPECT_FALSE(bogus.accepted);
  EXPECT_FALSE(bogus.committed);
  EXPECT_NE(bogus.reject_reason.find("no task named"), std::string::npos);
  EXPECT_EQ(controller.mode().task_set->size(), 1u);

  const ModeTransition ok = controller.evict("tau0");
  EXPECT_TRUE(ok.committed);
  EXPECT_EQ(controller.mode().task_set->size(), 0u);
}

TEST(ModeChangeTest, ResizeAppliesPoolDelta) {
  ThreadPool pool(2);
  ModeChangeConfig config = small_config();
  ModeChangeController controller(config, &pool);
  EXPECT_EQ(controller.mode().workers, 2u);  // the pool's size wins
  ASSERT_TRUE(controller.admit(light_task("tau0", 0)).committed);

  const ModeTransition grow = controller.resize(4);
  EXPECT_TRUE(grow.committed);
  EXPECT_EQ(grow.detail, "2 -> 4");
  EXPECT_EQ(pool.worker_count(), 4u);
  EXPECT_EQ(controller.mode().workers, 4u);

  const ModeTransition shrink = controller.resize(2);
  EXPECT_TRUE(shrink.committed);
  EXPECT_EQ(pool.worker_count(), 2u);

  const ModeTransition zero = controller.resize(0);
  EXPECT_FALSE(zero.committed);
  EXPECT_EQ(pool.worker_count(), 2u);
}

// ---------------------------------------------------------------------------
// Runtime cross-check (step 5) vs. the static Lemma 2 witness.

TEST(ModeChangeTest, ResizeIntoFig1cDeadlockRolledBackByCrossCheck) {
  // global-baseline ignores blocking-reduced concurrency, so it happily
  // accepts Fig. 1(c) at m = 2 — exactly the analyzer/binding mismatch the
  // runtime cross-check exists to catch.
  ModeChangeConfig config;
  config.analyzer = "global-baseline";
  config.cores = 3;
  ModeChangeController controller(config);
  const DagTask task = fig1c_task(0);

  // At m = 3 the task is deadlock-free: admit commits, cross-check passes.
  ASSERT_FALSE(analysis::find_wait_for_cycle(task, 3).has_value());
  const ModeTransition admit = controller.admit(task);
  ASSERT_TRUE(admit.committed);
  EXPECT_TRUE(admit.cross_check_ok);

  // At m = 2 the static analysis (Lemma 2) finds a wait-for cycle; the
  // controller's runtime re-validation must agree and ROLL BACK even
  // though the (blocking-blind) analyzer accepted.
  const auto witness = analysis::find_wait_for_cycle(task, 2);
  ASSERT_TRUE(witness.has_value());
  const ModeTransition shrink = controller.resize(2);
  EXPECT_TRUE(shrink.accepted);  // the analyzer said yes...
  EXPECT_FALSE(shrink.cross_check_ok);
  EXPECT_FALSE(shrink.committed);  // ...and was overruled
  EXPECT_NE(shrink.reject_reason.find("cycle"), std::string::npos);

  // Old mode intact: still 3 workers, the task still admitted.
  EXPECT_EQ(controller.mode().workers, 3u);
  EXPECT_EQ(controller.mode().task_set->size(), 1u);
}

TEST(ModeChangeTest, CrossCheckFailureCommitsLoudlyWhenNotRequired) {
  ModeChangeConfig config;
  config.analyzer = "global-baseline";
  config.cores = 2;
  config.require_cross_check = false;
  ModeChangeController controller(config);
  const ModeTransition tr = controller.admit(fig1c_task(0));
  EXPECT_TRUE(tr.accepted);
  EXPECT_FALSE(tr.cross_check_ok);  // recorded loudly...
  EXPECT_TRUE(tr.committed);        // ...but committed as configured
}

// ---------------------------------------------------------------------------
// Warm-equals-cold: the property the warm-start shortcut must preserve.

TEST(ModeChangeTest, WarmVerdictsBitIdenticalToColdOverSeededStreams) {
  for (const std::uint64_t seed : {11u, 29u, 47u}) {
    exp::ElasticScenarioParams params;
    params.steps = 8;
    const std::vector<exp::ElasticRequest> requests =
        exp::make_elastic_scenario(params, seed);
    const exp::ElasticReplay replay =
        exp::replay_elastic(requests, small_config(), /*pool=*/nullptr,
                            /*verify_cold=*/true);
    EXPECT_TRUE(replay.verdicts_agree)
        << "seed " << seed << ": warm verdict diverged from cold re-analysis";
    EXPECT_GT(replay.verified, 0u) << "seed " << seed;
    EXPECT_EQ(replay.committed + replay.rejected, requests.size())
        << "seed " << seed;
  }
}

TEST(ModeChangeTest, WarmAdmissionsActuallyReuseWarmState) {
  // Incremental off: the warm-start tier alone must carry the shortcut.
  ModeChangeConfig config = small_config();
  config.incremental = false;
  ModeChangeController controller(config);
  ASSERT_TRUE(controller.admit(light_task("tau0", 0)).committed);
  const ModeTransition second = controller.admit(light_task("tau1", 1));
  ASSERT_TRUE(second.committed);
  // The shortcut is real, not vacuous: the second admission seeded from the
  // first mode's converged response times.
  EXPECT_TRUE(second.warm_seeded);
  EXPECT_GT(second.warm_hits, 0u);
  EXPECT_EQ(second.incremental_hits, 0u);
  // And it matches a cold run of the same proposal bit-for-bit.
  ASSERT_NE(second.proposed, nullptr);
  const analysis::Report cold = controller.cold_analyze(*second.proposed);
  EXPECT_TRUE(cold == second.report);
}

TEST(ModeChangeTest, IncrementalAdmissionsCopyPriorVerdicts) {
  // Default config: incremental on. The second admission adds tau1 at a
  // LOWER priority than surviving tau0, so tau0 sits in the copyable
  // prefix — its fixed point is skipped outright, not just warm-started.
  ModeChangeController controller(small_config());
  const ModeTransition first = controller.admit(light_task("tau0", 0));
  ASSERT_TRUE(first.committed);
  EXPECT_TRUE(first.incremental_armed);
  EXPECT_EQ(first.incremental_prefix, 0u);  // no prior incarnation yet
  const ModeTransition second = controller.admit(light_task("tau1", 1));
  ASSERT_TRUE(second.committed);
  EXPECT_TRUE(second.incremental_armed);
  EXPECT_EQ(second.incremental_prefix, 1u);
  EXPECT_GT(second.incremental_hits, 0u);
  // Bit-identical to a cold run of the same proposal.
  ASSERT_NE(second.proposed, nullptr);
  const analysis::Report cold = controller.cold_analyze(*second.proposed);
  EXPECT_TRUE(cold == second.report);
}

TEST(ModeChangeTest, IncrementalEvictionsCopyHigherPriorityPrefix) {
  ModeChangeController controller(small_config());
  ASSERT_TRUE(controller.admit(light_task("tau0", 0)).committed);
  ASSERT_TRUE(controller.admit(light_task("tau1", 1)).committed);
  ASSERT_TRUE(controller.admit(light_task("tau2", 2)).committed);
  // Evicting the LOWEST-priority task leaves every survivor's ordered
  // interference inputs unchanged: the whole surviving set is copyable.
  const ModeTransition evict = controller.evict("tau2");
  ASSERT_TRUE(evict.committed);
  EXPECT_TRUE(evict.incremental_armed);
  EXPECT_EQ(evict.incremental_prefix, 2u);
  EXPECT_GT(evict.incremental_hits, 0u);
  ASSERT_NE(evict.proposed, nullptr);
  const analysis::Report cold = controller.cold_analyze(*evict.proposed);
  EXPECT_TRUE(cold == evict.report);
}

TEST(ModeChangeTest, ResizeCopiesNothingButStaysCorrect) {
  // A resize changes m: the per-analyze core-count guard must reject every
  // copy. The verdict still matches a cold run at the new m.
  ModeChangeController controller(small_config());
  ASSERT_TRUE(controller.admit(light_task("tau0", 0)).committed);
  const ModeTransition resize = controller.resize(6);
  ASSERT_TRUE(resize.committed);
  EXPECT_TRUE(resize.incremental_armed);
  EXPECT_EQ(resize.incremental_hits, 0u);
  ASSERT_NE(resize.proposed, nullptr);
  const analysis::Report cold = controller.cold_analyze(*resize.proposed);
  EXPECT_TRUE(cold == resize.report);
}

// ---------------------------------------------------------------------------
// Determinism contract: same requests, same log (modulo timings).

TEST(ModeChangeTest, TransitionLogReplaysBitIdentically) {
  const auto drive = [](ModeChangeController& controller) {
    controller.admit(light_task("tau0", 0));
    controller.admit(overload_task("heavy", 1));
    controller.resize(6);
    controller.admit(light_task("tau1", 2));
    controller.evict("tau0");
    controller.evict("never-admitted");
  };
  ModeChangeController a(small_config());
  ModeChangeController b(small_config());
  drive(a);
  drive(b);
  const std::string log_a = a.render_log_json(/*include_timings=*/false);
  EXPECT_EQ(log_a, b.render_log_json(/*include_timings=*/false));
  EXPECT_NE(log_a.find("\"rtpool-mode-transitions-v1\""), std::string::npos);
  EXPECT_EQ(a.transition_log().size(), 6u);
}

// ---------------------------------------------------------------------------
// Concurrency: simultaneous proposals serialize deterministically. (These
// run under the TSan CI matrix — the point is as much the absence of data
// races as the assertions below.)

TEST(ModeChangeTest, TwoSimultaneousProposalsSerialize) {
  ModeChangeController controller(small_config());
  std::atomic<int> ready{0};
  ModeTransition tr_a, tr_b;
  std::thread a([&] {
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();
    tr_a = controller.admit(light_task("alpha", 0));
  });
  std::thread b([&] {
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();
    tr_b = controller.admit(light_task("beta", 1));
  });
  a.join();
  b.join();

  EXPECT_TRUE(tr_a.committed);
  EXPECT_TRUE(tr_b.committed);
  // The proposals got distinct, consecutive sequence numbers: one of them
  // went strictly first, there is no interleaved half-order.
  EXPECT_EQ(std::min(tr_a.id, tr_b.id), 1u);
  EXPECT_EQ(std::max(tr_a.id, tr_b.id), 2u);
  // Whichever serialized second analyzed a proposal that already contained
  // the winner's task: proposals see fully committed modes, never partial.
  const ModeTransition& first = tr_a.id < tr_b.id ? tr_a : tr_b;
  const ModeTransition& second = tr_a.id < tr_b.id ? tr_b : tr_a;
  ASSERT_NE(first.proposed, nullptr);
  ASSERT_NE(second.proposed, nullptr);
  EXPECT_EQ(first.proposed->size(), 1u);
  EXPECT_EQ(second.proposed->size(), 2u);

  // Final state is the same under either order: both tasks in, two commits.
  const ModeSnapshot mode = controller.mode();
  EXPECT_EQ(mode.task_set->size(), 2u);
  EXPECT_EQ(mode.version, 3u);  // initial empty mode was version 1
  const std::vector<ModeTransition> log = controller.transition_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].id, 1u);
  EXPECT_EQ(log[1].id, 2u);
}

TEST(ModeChangeTest, ConcurrentProposalStormStaysSerializable) {
  ThreadPool pool(2);
  ModeChangeController controller(small_config(), &pool);
  constexpr int kPerThread = 8;
  std::atomic<int> ready{0};
  std::atomic<int> committed_admits{0};
  // Admissions may legitimately be REJECTED as interference accumulates
  // (the analysis, not the locking, decides) — the invariants under test
  // are serialization and state consistency, not schedulability.
  const auto admitter = [&](const std::string& prefix, int priority_base) {
    ready.fetch_add(1);
    while (ready.load() < 3) std::this_thread::yield();
    for (int i = 0; i < kPerThread; ++i) {
      const ModeTransition tr = controller.admit(
          light_task(prefix + std::to_string(i), priority_base + i));
      if (tr.committed) committed_admits.fetch_add(1);
    }
  };
  std::thread a(admitter, "a", 0);
  std::thread b(admitter, "b", 100);
  std::thread resizer([&] {
    ready.fetch_add(1);
    while (ready.load() < 3) std::this_thread::yield();
    for (const std::size_t workers : {3u, 4u, 2u})
      controller.resize(workers);  // may commit or reject; must not race
  });
  a.join();
  b.join();
  resizer.join();

  // Every request serialized: the log's sequence numbers are 1..N with no
  // gaps or duplicates, and every admitted task is in the final mode.
  const std::vector<ModeTransition> log = controller.transition_log();
  ASSERT_EQ(log.size(), static_cast<std::size_t>(2 * kPerThread + 3));
  for (std::size_t i = 0; i < log.size(); ++i)
    EXPECT_EQ(log[i].id, i + 1);
  // Exactly the committed admissions are in the final mode — a torn commit
  // would leave the count off under either failure direction.
  EXPECT_GT(committed_admits.load(), 0);
  EXPECT_EQ(controller.mode().task_set->size(),
            static_cast<std::size_t>(committed_admits.load()));
}

// ---------------------------------------------------------------------------
// Drain: commits wait for in-flight JobScopes.

TEST(ModeChangeTest, CommitDrainsInFlightJobScopes) {
  ModeChangeController controller(small_config());
  ASSERT_TRUE(controller.admit(light_task("tau0", 0)).committed);
  const std::uint64_t version_before = controller.mode().version;

  std::mutex mu;
  std::condition_variable cv;
  bool job_started = false;
  bool release_job = false;
  std::thread job([&] {
    ModeChangeController::JobScope scope(controller);
    EXPECT_EQ(scope.snapshot().version, version_before);
    {
      std::lock_guard lock(mu);
      job_started = true;
      cv.notify_all();
    }
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release_job; });
    // The job keeps observing its admission-time mode even while a commit
    // is pending: snapshots are immutable and shared.
    EXPECT_EQ(scope.task_set().size(), 1u);
  });
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return job_started; });
  }

  std::atomic<bool> admitted{false};
  std::thread request([&] {
    controller.admit(light_task("tau1", 1));
    admitted = true;
  });
  // The commit must not land while the old-mode job is still in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(controller.mode().version, version_before);

  {
    std::lock_guard lock(mu);
    release_job = true;
    cv.notify_all();
  }
  job.join();
  request.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(controller.mode().version, version_before + 1);
  EXPECT_EQ(controller.mode().task_set->size(), 2u);
}

}  // namespace
}  // namespace rtpool::exec
