// Unit tests for the concurrency analysis of Section 3.1: C(v), X(v),
// b̄(τ) and the lower bound l̄(τ) on available concurrency.
#include <gtest/gtest.h>

#include "analysis/concurrency.h"
#include "gen/taskset_generator.h"
#include "model/builder.h"

namespace rtpool::analysis {
namespace {

using model::DagTask;
using model::DagTaskBuilder;
using model::NodeId;
using model::NodeType;

/// src -> BF(f) -> {c1,c2,c3} -> BJ(j) -> post (one blocking region).
struct OneRegion {
  DagTask task;
  NodeId fork, join, child0;
};

OneRegion one_region() {
  DagTaskBuilder b("one");
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(2.0, 3.0, {4.0, 5.0, 6.0});
  const NodeId post = b.add_node(1.0);
  b.add_edge(pre, fj.fork);
  b.add_edge(fj.join, post);
  b.period(100.0);
  return {b.build(), fj.fork, fj.join, fj.children[0]};
}

/// src -> {region1, region2} in parallel -> sink (two concurrent regions).
struct TwoRegions {
  DagTask task;
  NodeId f1, j1, c1;  // region 1
  NodeId f2, j2, c2;  // region 2
};

TwoRegions two_regions() {
  DagTaskBuilder b("two");
  const NodeId src = b.add_node(1.0);
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {2.0, 2.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {2.0, 2.0});
  const NodeId snk = b.add_node(1.0);
  b.add_edge(src, r1.fork);
  b.add_edge(src, r2.fork);
  b.add_edge(r1.join, snk);
  b.add_edge(r2.join, snk);
  b.period(100.0);
  return {b.build(), r1.fork, r1.join, r1.children[0],
          r2.fork, r2.join, r2.children[0]};
}

TEST(ConcurrencyTest, NoBlockingForksMeansFullConcurrency) {
  const DagTask t = model::make_fork_join_task("plain", 4, 1.0, 100.0, false);
  EXPECT_EQ(max_affecting_forks(t), 0u);
  EXPECT_EQ(available_concurrency_lower_bound(t, 8), 8);
  for (NodeId v = 0; v < t.node_count(); ++v)
    EXPECT_TRUE(affecting_blocking_forks(t, v).none());
}

TEST(ConcurrencyTest, SingleRegion) {
  const auto [t, fork, join, child] = one_region();

  // The fork is ordered with every node, so C(v) is empty everywhere.
  for (NodeId v = 0; v < t.node_count(); ++v)
    EXPECT_TRUE(concurrent_blocking_forks(t, v).none()) << "v=" << v;

  // X(child) = {F(child)} = {fork}; X elsewhere empty.
  const auto x_child = affecting_blocking_forks(t, child);
  EXPECT_EQ(x_child.count(), 1u);
  EXPECT_TRUE(x_child.test(fork));
  EXPECT_TRUE(affecting_blocking_forks(t, fork).none());
  EXPECT_TRUE(affecting_blocking_forks(t, join).none());
  EXPECT_TRUE(affecting_blocking_forks(t, t.source()).none());

  EXPECT_EQ(max_affecting_forks(t), 1u);
  EXPECT_EQ(available_concurrency_lower_bound(t, 8), 7);
  EXPECT_EQ(available_concurrency_lower_bound(t, 1), 0);
}

TEST(ConcurrencyTest, TwoParallelRegions) {
  const auto r = two_regions();
  const DagTask& t = r.task;

  // The two forks are mutually concurrent.
  const auto c_f1 = concurrent_blocking_forks(t, r.f1);
  EXPECT_EQ(c_f1.count(), 1u);
  EXPECT_TRUE(c_f1.test(r.f2));

  // A member of region 1 is endangered by the concurrent fork f2 AND by its
  // own barrier fork f1.
  const auto x_c1 = affecting_blocking_forks(t, r.c1);
  EXPECT_EQ(x_c1.count(), 2u);
  EXPECT_TRUE(x_c1.test(r.f1));
  EXPECT_TRUE(x_c1.test(r.f2));

  // Joins are concurrent with the opposite fork.
  const auto x_j1 = affecting_blocking_forks(t, r.j1);
  EXPECT_EQ(x_j1.count(), 1u);
  EXPECT_TRUE(x_j1.test(r.f2));

  // Source/sink are ordered with everything.
  EXPECT_TRUE(affecting_blocking_forks(t, t.source()).none());
  EXPECT_TRUE(affecting_blocking_forks(t, t.sink()).none());

  EXPECT_EQ(max_affecting_forks(t), 2u);
  EXPECT_EQ(available_concurrency_lower_bound(t, 2), 0);
  EXPECT_EQ(available_concurrency_lower_bound(t, 3), 1);
}

TEST(ConcurrencyTest, NodeNeverConcurrentWithItself) {
  const auto r = two_regions();
  EXPECT_FALSE(concurrent_blocking_forks(r.task, r.f1).test(r.f1));
  EXPECT_FALSE(concurrent_blocking_forks(r.task, r.f2).test(r.f2));
}

TEST(ConcurrencyTest, AllAffectingForksMatchesPerNode) {
  const auto r = two_regions();
  const auto all = all_affecting_forks(r.task);
  ASSERT_EQ(all.size(), r.task.node_count());
  for (NodeId v = 0; v < r.task.node_count(); ++v)
    EXPECT_EQ(all[v], affecting_blocking_forks(r.task, v)) << "v=" << v;
}

TEST(ConcurrencyTest, SequentialRegionsDoNotInteract) {
  // Two regions in series: region2 starts after region1's join.
  DagTaskBuilder b("series");
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {2.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {2.0});
  b.add_edge(r1.join, r2.fork);
  b.period(100.0);
  const DagTask t = b.build();
  EXPECT_EQ(max_affecting_forks(t), 1u);  // only the own-barrier fork
}

/// Property sweep on random generated tasks: X(v) computed by the optimized
/// batch routine must agree with a brute-force reimplementation.
class ConcurrencyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConcurrencyPropertyTest, BatchMatchesBruteForce) {
  util::Rng rng(GetParam());
  gen::TaskSetParams params;
  params.cores = 8;
  const DagTask t = gen::generate_task(params, 0, 0.5, rng);
  const auto& reach = t.reachability();
  const auto all = all_affecting_forks(t);

  for (NodeId v = 0; v < t.node_count(); ++v) {
    util::DynamicBitset expect(t.node_count());
    for (NodeId f = 0; f < t.node_count(); ++f) {
      if (t.type(f) != NodeType::BF || f == v) continue;
      if (reach.reaches(f, v) || reach.reaches(v, f)) continue;
      expect.set(f);
    }
    if (t.type(v) == NodeType::BC) expect.set(t.blocking_fork_of(v));
    EXPECT_EQ(all[v], expect) << "seed=" << GetParam() << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrencyPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace rtpool::analysis
