// Slow (ctest -L slow) corpus soak: a real sweep over the full default
// scenario mix with the default analyzer set, asserting the safety
// direction holds and the kill/resume property at production scale
// parameters. The fast unit variants in test_corpus.cpp use a tiny
// synthetic mix; this one exercises every scenario and every default
// analyzer exactly as the CI corpus-smoke job does.
#include <gtest/gtest.h>

#include <filesystem>

#include "corpus/corpus.h"

namespace rtpool::corpus {
namespace {

CorpusConfig soak_config(std::uint64_t begin, std::uint64_t end) {
  CorpusConfig config;
  config.seed_begin = begin;
  config.seed_end = end;
  config.shards = 12;
  config.cores = 4;
  config.windows = 3.0;
  return config;  // default analyzers, default scenario space
}

TEST(CorpusSoakTest, DefaultMixHoldsSafetyDirection) {
  const CorpusResult r = CorpusRunner(soak_config(0, 600)).run();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_EQ(r.sets + r.generation_errors, 600u);
  // Every scenario of the default mix contributed sets.
  for (std::size_t i = 0; i < r.per_scenario_sets.size(); ++i)
    EXPECT_GT(r.per_scenario_sets[i], 0u) << r.scenario_names[i];
  // Sound analyzers assert; at least one accepted set exists per family.
  for (const AnalyzerStats& st : r.per_analyzer) {
    if (st.mode == OracleMode::kAssertSafety) {
      EXPECT_EQ(st.safety_violations, 0u) << st.analyzer;
      EXPECT_GT(st.gap.count(), 0u) << st.analyzer;
      // The analysis is sufficient: a clean bound is never below what the
      // simulator observed (gap >= 1 up to fp rounding).
      EXPECT_GE(st.gap.min(), 1.0 - 1e-9) << st.analyzer;
    }
  }
}

TEST(CorpusSoakTest, KillResumeAtScale) {
  const std::string ck =
      (std::filesystem::temp_directory_path() / "rtpool_soak_ck.json").string();
  std::filesystem::remove(ck);

  const CorpusResult straight = CorpusRunner(soak_config(600, 900)).run();

  CorpusConfig paused = soak_config(600, 900);
  paused.checkpoint_path = ck;
  paused.budget_sets = 120;
  EXPECT_FALSE(CorpusRunner(paused).run().complete);

  CorpusConfig resume = soak_config(600, 900);
  resume.checkpoint_path = ck;
  resume.resume = true;
  const CorpusResult resumed = CorpusRunner(resume).run();
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(straight.per_analyzer, resumed.per_analyzer);
  EXPECT_EQ(straight.sets, resumed.sets);
  EXPECT_EQ(straight.per_scenario_sets, resumed.per_scenario_sets);
  std::filesystem::remove(ck);
}

}  // namespace
}  // namespace rtpool::corpus
