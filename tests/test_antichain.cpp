// Unit tests for the antichain refinement of the available-concurrency
// lower bound (analysis/antichain.h).
#include <gtest/gtest.h>

#include "analysis/antichain.h"
#include "analysis/concurrency.h"
#include "analysis/global_rta.h"
#include "gen/taskset_generator.h"
#include "model/builder.h"
#include "sim/engine.h"

namespace rtpool::analysis {
namespace {

using model::DagTask;
using model::DagTaskBuilder;
using model::NodeId;

TEST(AntichainTest, NoForksIsZero) {
  const DagTask t = model::make_fork_join_task("plain", 3, 1.0, 100.0, false);
  EXPECT_EQ(max_simultaneous_suspensions(t), 0u);
  EXPECT_EQ(available_concurrency_lower_bound_antichain(t, 4), 4);
}

TEST(AntichainTest, SingleForkIsOne) {
  const DagTask t = model::make_fork_join_task("one", 3, 1.0, 100.0, true);
  EXPECT_EQ(max_simultaneous_suspensions(t), 1u);
}

TEST(AntichainTest, ParallelForksCount) {
  // k parallel blocking regions: antichain = k = b̄ (no refinement here).
  for (std::size_t k : {2u, 3u, 4u}) {
    DagTaskBuilder b("par" + std::to_string(k));
    const NodeId src = b.add_node(1.0);
    const NodeId snk = b.add_node(1.0);
    for (std::size_t i = 0; i < k; ++i) {
      const auto r = b.add_blocking_fork_join(1.0, 1.0, {1.0});
      b.add_edge(src, r.fork);
      b.add_edge(r.join, snk);
    }
    b.period(100.0);
    const DagTask t = b.build();
    EXPECT_EQ(max_simultaneous_suspensions(t), k);
    EXPECT_EQ(max_affecting_forks(t), k);
  }
}

TEST(AntichainTest, SequentialForksCollapse) {
  // Regions in series can never suspend together: antichain = 1.
  DagTaskBuilder b("series");
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  const auto r3 = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  b.add_edge(r1.join, r2.fork);
  b.add_edge(r2.join, r3.fork);
  b.period(100.0);
  const DagTask t = b.build();
  EXPECT_EQ(max_simultaneous_suspensions(t), 1u);
}

/// The motivating graph where the refinement is STRICT: two sequential
/// regions plus a long NB branch spanning both. The NB node is concurrent
/// with both forks, so b̄ = 2, but the forks themselves are ordered and the
/// antichain is 1.
DagTask strict_refinement_task() {
  DagTaskBuilder b("strict");
  const NodeId src = b.add_node(1.0);
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  const NodeId spanning = b.add_node(10.0);  // parallel to both regions
  const NodeId snk = b.add_node(1.0);
  b.add_edge(src, r1.fork);
  b.add_edge(r1.join, r2.fork);
  b.add_edge(r2.join, snk);
  b.add_edge(src, spanning);
  b.add_edge(spanning, snk);
  b.period(100.0);
  return b.build();
}

TEST(AntichainTest, ExtractedSetMatchesSizeAndIsPairwiseConcurrent) {
  for (const DagTask& t :
       {strict_refinement_task(), model::make_fork_join_task("one", 3, 1.0, 100.0, true),
        model::make_fork_join_task("plain", 3, 1.0, 100.0, false)}) {
    const auto set = max_simultaneous_suspension_set(t);
    EXPECT_EQ(set.size(), max_simultaneous_suspensions(t));
    for (const NodeId f : set) EXPECT_EQ(t.type(f), model::NodeType::BF);
    for (std::size_t i = 0; i < set.size(); ++i) {
      for (std::size_t j = i + 1; j < set.size(); ++j) {
        EXPECT_FALSE(t.reachability().reaches(set[i], set[j]));
        EXPECT_FALSE(t.reachability().reaches(set[j], set[i]));
      }
    }
  }
}

TEST(AntichainTest, ExtractedSetOnRandomTasks) {
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 6;
  params.total_utilization = 3.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const auto ts = gen::generate_task_set(params, rng);
    for (const DagTask& t : ts.tasks()) {
      const auto set = max_simultaneous_suspension_set(t);
      EXPECT_EQ(set.size(), max_simultaneous_suspensions(t));
      for (std::size_t i = 0; i < set.size(); ++i)
        for (std::size_t j = i + 1; j < set.size(); ++j)
          EXPECT_FALSE(t.reachability().reaches(set[i], set[j]) ||
                       t.reachability().reaches(set[j], set[i]));
    }
  }
}

TEST(AntichainTest, StrictlyTighterThanMaxAffectingForks) {
  const DagTask t = strict_refinement_task();
  EXPECT_EQ(max_affecting_forks(t), 2u);           // the paper's b̄
  EXPECT_EQ(max_simultaneous_suspensions(t), 1u);  // the refinement
  EXPECT_EQ(available_concurrency_lower_bound(t, 2), 0);
  EXPECT_EQ(available_concurrency_lower_bound_antichain(t, 2), 1);
}

TEST(AntichainTest, RefinedRtaAcceptsMore) {
  // On m = 2, the paper's test rejects the strict-refinement task
  // (l̄ = 0 -> potential deadlock) while the antichain bound accepts it.
  model::TaskSet ts(2);
  ts.add(strict_refinement_task());

  GlobalRtaOptions paper;
  paper.limited_concurrency = true;
  paper.concurrency = ConcurrencyBound::kMaxAffectingForks;
  EXPECT_FALSE(analyze_global(ts, paper).schedulable);

  GlobalRtaOptions refined = paper;
  refined.concurrency = ConcurrencyBound::kMaxAntichain;
  const auto result = analyze_global(ts, refined);
  EXPECT_TRUE(result.schedulable);
  EXPECT_EQ(result.per_task[0].concurrency_bound, 1);
}

TEST(AntichainTest, SimulationConfirmsRefinedBound) {
  // The simulator agrees: the strict-refinement task never stalls on two
  // threads and its min available concurrency respects the refined bound.
  model::TaskSet ts(2);
  ts.add(strict_refinement_task());
  sim::SimConfig cfg;
  cfg.policy = sim::SchedulingPolicy::kGlobal;
  cfg.horizon = 100.0;
  const auto r = sim::simulate(ts, cfg);
  EXPECT_FALSE(r.deadlock.has_value());
  EXPECT_GE(r.per_task[0].min_available_concurrency, 1);
}

/// Property: the antichain bound is never below the Section 3.1 bound, and
/// the simulator's observed minimum concurrency never dips below either.
class AntichainPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AntichainPropertyTest, DominatesPaperBoundAndSimulation) {
  util::Rng rng(GetParam());
  gen::TaskSetParams params;
  params.cores = 4;
  params.task_count = 3;
  params.total_utilization = 1.5;
  const model::TaskSet ts = gen::generate_task_set(params, rng);

  for (const auto& task : ts.tasks()) {
    const long paper = available_concurrency_lower_bound(task, 4);
    const long refined = available_concurrency_lower_bound_antichain(task, 4);
    EXPECT_GE(refined, paper) << "seed=" << GetParam();
    EXPECT_LE(max_simultaneous_suspensions(task), task.blocking_fork_count());
  }

  sim::SimConfig cfg;
  cfg.policy = sim::SchedulingPolicy::kGlobal;
  double max_period = 0.0;
  for (const auto& t : ts.tasks()) max_period = std::max(max_period, t.period());
  cfg.horizon = 8.0 * max_period;
  const auto r = sim::simulate(ts, cfg);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const long refined = available_concurrency_lower_bound_antichain(ts.task(i), 4);
    if (r.deadlock.has_value()) break;  // stalled runs stop early
    EXPECT_GE(r.per_task[i].min_available_concurrency, refined)
        << "seed=" << GetParam() << " task=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AntichainPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace rtpool::analysis
