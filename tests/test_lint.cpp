// rtpool-lint rule pipeline: one clean (positive) and one violating
// (negative) fixture per rule family, plus renderer round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "lint/render.h"
#include "lint/rules.h"
#include "util/json.h"

namespace {

using namespace rtpool;
using lint::LintOptions;
using lint::LintReport;
using lint::PartitionSource;
using lint::RawEdge;
using lint::RawTask;
using lint::RawTaskSet;
using lint::Severity;
using model::NodeType;

model::Node node(NodeType type, double wcet = 1.0) {
  model::Node n;
  n.type = type;
  n.wcet = wcet;
  return n;
}

/// NB chain 0 -> 1 -> ... -> n-1.
RawTask chain_task(const std::string& name, std::size_t n, int priority = 0) {
  RawTask t;
  t.name = name;
  t.period = 100.0;
  t.deadline = 100.0;
  t.priority = priority;
  for (std::size_t v = 0; v < n; ++v) t.nodes.push_back(node(NodeType::NB));
  for (std::size_t v = 0; v + 1 < n; ++v) t.edges.push_back(RawEdge{v, v + 1});
  return t;
}

/// NB source -> BF -> {BC x children} -> BJ -> NB sink (one blocking region).
RawTask region_task(const std::string& name, std::size_t children,
                    int priority = 0) {
  RawTask t;
  t.name = name;
  t.period = 100.0;
  t.deadline = 100.0;
  t.priority = priority;
  t.nodes.push_back(node(NodeType::NB));  // 0: source
  t.nodes.push_back(node(NodeType::BF));  // 1: fork
  t.nodes.push_back(node(NodeType::BJ));  // 2: join
  t.edges.push_back(RawEdge{0, 1});
  for (std::size_t c = 0; c < children; ++c) {
    const std::size_t bc = t.nodes.size();
    t.nodes.push_back(node(NodeType::BC));
    t.edges.push_back(RawEdge{1, bc});
    t.edges.push_back(RawEdge{bc, 2});
  }
  const std::size_t sink = t.nodes.size();
  t.nodes.push_back(node(NodeType::NB));
  t.edges.push_back(RawEdge{2, sink});
  return t;
}

RawTaskSet single(RawTask task, std::size_t cores = 4) {
  RawTaskSet raw;
  raw.cores = cores;
  raw.tasks.push_back(std::move(task));
  return raw;
}

bool fired(const LintReport& report, const std::string& rule) {
  return !report.by_rule(rule).empty();
}

// ---------------------------------------------------------------------------
// Clean models

TEST(LintCleanTest, ChainAndRegionTasksPass) {
  RawTaskSet raw;
  raw.cores = 4;
  raw.tasks.push_back(chain_task("bg", 3, 2));
  raw.tasks.push_back(region_task("cam", 3, 1));
  const LintReport report = lint::run_lint(raw);
  EXPECT_TRUE(report.clean()) << lint::render_text(report);
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(LintCleanTest, ValidatedTaskSetOverloadAgrees) {
  // The model::TaskSet overload lints the down-converted raw form.
  RawTaskSet raw;
  raw.cores = 4;
  raw.tasks.push_back(region_task("cam", 2));
  ASSERT_TRUE(lint::run_lint(raw).clean());
  // Rebuild as a validated TaskSet through the lint promotion path is
  // internal; exercise the public overload with a hand-built set instead.
  graph::Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  std::vector<model::Node> nodes{node(NodeType::NB), node(NodeType::NB),
                                 node(NodeType::NB)};
  model::TaskSet ts(2);
  ts.add(model::DagTask("solo", std::move(dag), nodes, 50.0, 50.0, 0));
  EXPECT_TRUE(lint::run_lint(ts).clean());
}

// ---------------------------------------------------------------------------
// D family: DAG well-formedness

TEST(LintDagTest, D1CycleReportedWithWitness) {
  RawTask t = chain_task("cyc", 3);
  t.edges.push_back(RawEdge{2, 0});  // 0 -> 1 -> 2 -> 0
  const LintReport report = lint::run_lint(single(t));
  const auto diags = report.by_rule("RTP-D1");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("0 -> 1 -> 2 -> 0"), std::string::npos)
      << diags[0].message;
}

TEST(LintDagTest, D1SelfLoopReported) {
  RawTask t = chain_task("loop", 2);
  t.edges.push_back(RawEdge{1, 1});
  const LintReport report = lint::run_lint(single(t));
  EXPECT_TRUE(fired(report, "RTP-D1"));
}

TEST(LintDagTest, D2DuplicateEdge) {
  RawTask t = chain_task("dup", 2);
  t.edges.push_back(RawEdge{0, 1});
  const LintReport report = lint::run_lint(single(t));
  const auto diags = report.by_rule("RTP-D2");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("0 -> 1"), std::string::npos);
}

TEST(LintDagTest, D3MultipleSources) {
  // Two chains merging: 0 -> 2 <- 1.
  RawTask t;
  t.name = "two_src";
  t.period = t.deadline = 100.0;
  for (int i = 0; i < 3; ++i) t.nodes.push_back(node(NodeType::NB));
  t.edges.push_back(RawEdge{0, 2});
  t.edges.push_back(RawEdge{1, 2});
  const LintReport report = lint::run_lint(single(t));
  EXPECT_TRUE(fired(report, "RTP-D3"));
  EXPECT_FALSE(fired(report, "RTP-D4"));
}

TEST(LintDagTest, D4MultipleSinks) {
  RawTask t;
  t.name = "two_sink";
  t.period = t.deadline = 100.0;
  for (int i = 0; i < 3; ++i) t.nodes.push_back(node(NodeType::NB));
  t.edges.push_back(RawEdge{0, 1});
  t.edges.push_back(RawEdge{0, 2});
  const LintReport report = lint::run_lint(single(t));
  EXPECT_TRUE(fired(report, "RTP-D4"));
  EXPECT_FALSE(fired(report, "RTP-D3"));
}

TEST(LintDagTest, D5DisconnectedNode) {
  RawTask t = chain_task("island", 4);
  t.edges.pop_back();  // orphan node 3
  const LintReport report = lint::run_lint(single(t));
  const auto diags = report.by_rule("RTP-D5");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("{3}"), std::string::npos) << diags[0].message;
}

TEST(LintDagTest, D6EmptyTask) {
  RawTask t;
  t.name = "empty";
  t.period = t.deadline = 100.0;
  const LintReport report = lint::run_lint(single(t));
  EXPECT_TRUE(fired(report, "RTP-D6"));
  // Nothing else should fire for an empty task.
  EXPECT_EQ(report.error_count(), 1u);
}

// ---------------------------------------------------------------------------
// T family: timing / WCET

TEST(LintTimingTest, T1BadPeriodAndDeadline) {
  RawTask t = chain_task("bad_t", 2);
  t.period = -5.0;
  EXPECT_TRUE(fired(lint::run_lint(single(t)), "RTP-T1"));

  RawTask u = chain_task("bad_d", 2);
  u.deadline = 150.0;  // > period: constrained deadlines required
  const LintReport report = lint::run_lint(single(u));
  const auto diags = report.by_rule("RTP-T1");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("exceeds period"), std::string::npos);
}

TEST(LintTimingTest, T2NegativeAndAllZeroWcet) {
  RawTask t = chain_task("neg", 2);
  t.nodes[1].wcet = -1.0;
  const auto diags = lint::run_lint(single(t)).by_rule("RTP-T2");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].node, std::optional<std::size_t>(1));

  RawTask u = chain_task("zero", 2);
  u.nodes[0].wcet = u.nodes[1].wcet = 0.0;
  EXPECT_TRUE(fired(lint::run_lint(single(u)), "RTP-T2"));
}

// ---------------------------------------------------------------------------
// S family: structural restrictions (i)-(iii)

TEST(LintStructureTest, S1ForkWithoutChildrenOrJoin) {
  // Sink is a childless BF: no children, no join.
  RawTask t;
  t.name = "lonely_bf";
  t.period = t.deadline = 100.0;
  t.nodes.push_back(node(NodeType::NB));
  t.nodes.push_back(node(NodeType::BF));
  t.edges.push_back(RawEdge{0, 1});
  const LintReport report = lint::run_lint(single(t));
  EXPECT_TRUE(fired(report, "RTP-S1"));
}

TEST(LintStructureTest, S1OrphanedChildAndJoin) {
  // BC/BJ that no region flood ever claims.
  RawTask t = chain_task("orphan", 3);
  t.nodes[1] = node(NodeType::BC);
  const LintReport report = lint::run_lint(single(t));
  EXPECT_TRUE(fired(report, "RTP-S1"));
}

TEST(LintStructureTest, S2NestedRegions) {
  RawTask t = region_task("nested", 2);
  // Retype BC node 3 (a region member) into a second BF with its own child.
  t.nodes[3] = node(NodeType::BF);
  const LintReport report = lint::run_lint(single(t));
  EXPECT_TRUE(fired(report, "RTP-S2"));
}

TEST(LintStructureTest, S3EdgeIntoRegion) {
  RawTask t = region_task("leaky", 2);
  t.edges.push_back(RawEdge{0, 3});  // source -> BC: crosses the boundary
  const LintReport report = lint::run_lint(single(t));
  const auto diags = report.by_rule("RTP-S3");
  ASSERT_GE(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("incoming edge"), std::string::npos)
      << diags[0].message;
}

TEST(LintStructureTest, S3NbInsideRegion) {
  RawTask t = region_task("nb_in", 2);
  t.nodes[3] = node(NodeType::NB);  // NB where only BC may appear
  const LintReport report = lint::run_lint(single(t));
  EXPECT_TRUE(fired(report, "RTP-S3"));
}

// ---------------------------------------------------------------------------
// L family: deadlock lemmas

RawTask two_concurrent_regions(const std::string& name) {
  // Figure 1(c): two parallel blocking regions between common source/sink.
  RawTask t;
  t.name = name;
  t.period = t.deadline = 1000.0;
  t.nodes.push_back(node(NodeType::NB));  // 0 source
  t.nodes.push_back(node(NodeType::BF));  // 1
  t.nodes.push_back(node(NodeType::BJ));  // 2
  t.nodes.push_back(node(NodeType::BC));  // 3
  t.nodes.push_back(node(NodeType::BF));  // 4
  t.nodes.push_back(node(NodeType::BJ));  // 5
  t.nodes.push_back(node(NodeType::BC));  // 6
  t.nodes.push_back(node(NodeType::NB));  // 7 sink
  t.edges = {RawEdge{0, 1}, RawEdge{1, 3}, RawEdge{3, 2}, RawEdge{2, 7},
             RawEdge{0, 4}, RawEdge{4, 6}, RawEdge{6, 5}, RawEdge{5, 7}};
  return t;
}

TEST(LintDeadlockTest, L1AndL2FireOnTightPool) {
  const LintReport report =
      lint::run_lint(single(two_concurrent_regions("fig1c"), /*cores=*/2));
  const auto l1 = report.by_rule("RTP-L1");
  ASSERT_EQ(l1.size(), 1u);
  EXPECT_NE(l1[0].message.find("Lemma 1"), std::string::npos);
  const auto l2 = report.by_rule("RTP-L2");
  ASSERT_EQ(l2.size(), 1u);
  EXPECT_NE(l2[0].message.find("wait-for cycle"), std::string::npos);
  EXPECT_TRUE(fired(report, "RTP-P1"));  // l-bar = 0 rides along
  EXPECT_FALSE(report.clean());
}

TEST(LintDeadlockTest, L1SilentOnSufficientPool) {
  const LintReport report =
      lint::run_lint(single(two_concurrent_regions("fig1c"), /*cores=*/3));
  EXPECT_FALSE(fired(report, "RTP-L1"));
  EXPECT_FALSE(fired(report, "RTP-L2"));
  EXPECT_TRUE(report.clean()) << lint::render_text(report);
}

TEST(LintDeadlockTest, L3FiresUnderWorstFitNotAlgorithm1) {
  // The heavy BC fills core 0, the fused BF+BJ lands on core 1, and the
  // light BC follows onto core 1 — sharing its own fork's thread.
  RawTask t = region_task("cam", 2);
  t.nodes[3].wcet = 5.0;
  LintOptions worst_fit;
  worst_fit.partition_source = PartitionSource::kWorstFit;
  const LintReport bad = lint::run_lint(single(t, /*cores=*/2), worst_fit);
  const auto l3 = bad.by_rule("RTP-L3");
  ASSERT_EQ(l3.size(), 1u);
  EXPECT_NE(l3[0].message.find("Eq. (3)"), std::string::npos);
  EXPECT_EQ(l3[0].node, std::optional<std::size_t>(4));

  LintOptions algo1;
  algo1.partition_source = PartitionSource::kAlgorithm1;
  EXPECT_TRUE(lint::run_lint(single(t, 2), algo1).clean());
}

// ---------------------------------------------------------------------------
// P family: pool sizing

TEST(LintPoolTest, P2MoreThreadsThanNodes) {
  const LintReport report = lint::run_lint(single(chain_task("tiny", 2), 8));
  const auto diags = report.by_rule("RTP-P2");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kNote);
  EXPECT_TRUE(report.clean());  // notes don't fail the lint
}

TEST(LintPoolTest, P3PartitionerFailure) {
  RawTask t = chain_task("heavy", 2);
  t.nodes[1].wcet = 250.0;  // node utilization 2.5 > 1 on every core
  LintOptions options;
  options.partition_source = PartitionSource::kWorstFit;
  const LintReport report = lint::run_lint(single(t, 2), options);
  const auto diags = report.by_rule("RTP-P3");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_TRUE(fired(report, "RTP-C4"));  // overload warning rides along
}

// ---------------------------------------------------------------------------
// C family: cross-task consistency

TEST(LintSetTest, C1DuplicateNames) {
  RawTaskSet raw;
  raw.cores = 4;
  raw.tasks.push_back(chain_task("twin", 2, 0));
  raw.tasks.push_back(chain_task("twin", 3, 1));
  const LintReport report = lint::run_lint(raw);
  const auto diags = report.by_rule("RTP-C1");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].task, "twin");
}

TEST(LintSetTest, C2SharedPriorities) {
  RawTaskSet raw;
  raw.cores = 4;
  raw.tasks.push_back(chain_task("a", 2, 7));
  raw.tasks.push_back(chain_task("b", 2, 7));
  const LintReport report = lint::run_lint(raw);
  const auto diags = report.by_rule("RTP-C2");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_TRUE(report.clean());
}

TEST(LintSetTest, C3ProvidedPartitionShape) {
  LintOptions options;
  options.partition_source = PartitionSource::kProvided;
  analysis::TaskSetPartition partition;
  partition.per_task.push_back(analysis::NodeAssignment{{0, 1}});  // 2 of 3
  options.partition = partition;
  const LintReport report =
      lint::run_lint(single(chain_task("short", 3), 2), options);
  EXPECT_TRUE(fired(report, "RTP-C3"));
  EXPECT_FALSE(fired(report, "RTP-L3"));  // no Eq. 3 check on a bad shape
}

TEST(LintSetTest, C3ThreadIdOutOfRange) {
  LintOptions options;
  options.partition_source = PartitionSource::kProvided;
  analysis::TaskSetPartition partition;
  partition.per_task.push_back(analysis::NodeAssignment{{0, 9, 0}});
  options.partition = partition;
  const LintReport report =
      lint::run_lint(single(chain_task("oob", 3), 2), options);
  const auto diags = report.by_rule("RTP-C3");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].node, std::optional<std::size_t>(1));
}

TEST(LintSetTest, C4Overload) {
  RawTask t = chain_task("hog", 2);
  t.nodes[0].wcet = t.nodes[1].wcet = 150.0;  // U = 3 on 2 cores
  const LintReport report = lint::run_lint(single(t, 2));
  const auto diags = report.by_rule("RTP-C4");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

// ---------------------------------------------------------------------------
// Raw parser + renderers

TEST(LintIoTest, RawParserKeepsModelDefects) {
  const std::string text =
      "taskset cores=2\n"
      "task name=broken period=10 deadline=10 priority=0 nodes=2\n"
      "node 0 wcet=1 type=NB\n"
      "node 1 wcet=1 type=NB\n"
      "edge 0 1\n"
      "edge 0 1\n"   // duplicate: must parse, lint flags it
      "edge 1 1\n"   // self-loop: must parse, lint flags it
      "endtask\n";
  std::istringstream is(text);
  const RawTaskSet raw = lint::read_raw_task_set(is);
  ASSERT_EQ(raw.tasks.size(), 1u);
  EXPECT_EQ(raw.tasks[0].edges.size(), 3u);
  const LintReport report = lint::run_lint(raw);
  EXPECT_TRUE(fired(report, "RTP-D1"));
  EXPECT_TRUE(fired(report, "RTP-D2"));
}

TEST(LintRenderTest, TextRendererShape) {
  const LintReport report =
      lint::run_lint(single(two_concurrent_regions("fig1c"), 2));
  const std::string text = lint::render_text(report);
  EXPECT_NE(text.find("error[RTP-L1] task 'fig1c'"), std::string::npos) << text;
  EXPECT_NE(text.find("hint:"), std::string::npos);
  EXPECT_NE(text.find("2 errors, 1 warning, 0 notes"), std::string::npos) << text;
}

TEST(LintRenderTest, JsonRoundTripsThroughParser) {
  const LintReport report =
      lint::run_lint(single(two_concurrent_regions("fig1c"), 2));
  ASSERT_FALSE(report.diagnostics.empty());

  const util::JsonValue doc = util::parse_json(lint::render_json(report));
  EXPECT_EQ(doc.at("tool").as_string(), "rtpool-lint");
  EXPECT_EQ(doc.at("version").as_number(), 1.0);

  const auto& diags = doc.at("diagnostics").as_array();
  ASSERT_EQ(diags.size(), report.diagnostics.size());
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const lint::Diagnostic& d = report.diagnostics[i];
    EXPECT_EQ(diags[i].at("rule_id").as_string(), d.rule_id);
    EXPECT_EQ(diags[i].at("severity").as_string(), lint::to_string(d.severity));
    EXPECT_EQ(diags[i].at("task").as_string(), d.task);
    EXPECT_EQ(diags[i].at("message").as_string(), d.message);
    EXPECT_EQ(diags[i].at("fix_hint").as_string(), d.fix_hint);
    if (d.node.has_value())
      EXPECT_EQ(diags[i].at("node").as_number(), static_cast<double>(*d.node));
    else
      EXPECT_TRUE(diags[i].at("node").is_null());
  }

  const util::JsonValue& counts = doc.at("counts");
  EXPECT_EQ(counts.at("errors").as_number(),
            static_cast<double>(report.error_count()));
  EXPECT_EQ(counts.at("warnings").as_number(),
            static_cast<double>(report.warning_count()));
  EXPECT_EQ(counts.at("notes").as_number(),
            static_cast<double>(report.note_count()));
}

}  // namespace
