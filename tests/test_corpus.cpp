// Unit and property tests for the corpus engine (src/corpus) and the
// sharded checkpoint/resume machinery it rides (exp/sharded_runner.h).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "corpus/corpus.h"
#include "corpus/witness.h"
#include "exp/sharded_runner.h"
#include "model/builder.h"
#include "model/io.h"
#include "util/json.h"
#include "util/rng.h"

namespace rtpool::corpus {
namespace {

using model::DagTaskBuilder;
using model::TaskSet;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// GapHistogram
// ---------------------------------------------------------------------------

TEST(GapHistogramTest, EmptyIsZero) {
  GapHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(GapHistogramTest, ExactMinMaxMeanApproxPercentiles) {
  GapHistogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i) / 10.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 0.1);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_NEAR(h.mean(), 5.05, 1e-12);
  // Bins are 2^(1/12) wide (~6%): percentiles land within one bin of the
  // exact sample quantile.
  EXPECT_NEAR(h.percentile(50), 5.0, 5.0 * 0.07);
  EXPECT_NEAR(h.percentile(99), 9.9, 9.9 * 0.07);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.1);    // clamped to observed min
  EXPECT_DOUBLE_EQ(h.percentile(100), 10.0);  // clamped to observed max
}

TEST(GapHistogramTest, IgnoresNonPositiveAndNonFinite) {
  GapHistogram h;
  h.add(0.0);
  h.add(-1.0);
  h.add(std::nan(""));
  h.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 0u);
}

TEST(GapHistogramTest, OutliersClampToEdgeBinsButStatsStayExact) {
  GapHistogram h;
  h.add(1e-9);  // far below 2^-4
  h.add(1e9);   // far above 2^12
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1e-9);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1e9);
}

TEST(GapHistogramTest, JsonRoundTripIsExact) {
  GapHistogram h;
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) h.add(rng.uniform(0.01, 300.0));

  std::ostringstream os;
  util::JsonWriter w(os);
  h.to_json(w);

  GapHistogram restored;
  restored.from_json(util::parse_json(os.str()));
  EXPECT_EQ(h, restored);
  EXPECT_DOUBLE_EQ(h.percentile(90), restored.percentile(90));
}

// ---------------------------------------------------------------------------
// Soundness classification
// ---------------------------------------------------------------------------

TEST(SpecForTest, SoundnessTable) {
  EXPECT_EQ(spec_for("global-limited").mode, OracleMode::kAssertSafety);
  EXPECT_EQ(spec_for("global-limited").policy, sim::SchedulingPolicy::kGlobal);
  EXPECT_EQ(spec_for("global-limited-antichain-carryin").mode,
            OracleMode::kAssertSafety);
  EXPECT_EQ(spec_for("partitioned-proposed").mode, OracleMode::kAssertSafety);
  EXPECT_EQ(spec_for("partitioned-proposed").policy,
            sim::SchedulingPolicy::kPartitioned);
  // The paper's baselines are optimistic under pool semantics by design.
  EXPECT_EQ(spec_for("global-baseline").mode, OracleMode::kReportOnly);
  EXPECT_EQ(spec_for("partitioned-baseline").mode, OracleMode::kReportOnly);
  // Federated assumes dedicated cores the simulator does not model.
  EXPECT_EQ(spec_for("federated").mode, OracleMode::kNoSim);
  // No safety claim is assumed for unknown custom analyzers.
  EXPECT_EQ(spec_for("my-custom-analysis").mode, OracleMode::kNoSim);
}

// ---------------------------------------------------------------------------
// ShardedRunner::run_range
// ---------------------------------------------------------------------------

TEST(ShardRangeTest, ContiguousCoverageSizesDifferByAtMostOne) {
  const exp::SeedRange range{100, 175};  // 75 seeds
  const std::size_t shards = 8;
  std::uint64_t expect_begin = range.begin;
  std::uint64_t min_size = range.size(), max_size = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    const exp::SeedRange sub = exp::ShardedRunner::shard_range(range, shards, i);
    EXPECT_EQ(sub.begin, expect_begin);
    expect_begin = sub.end;
    min_size = std::min(min_size, sub.size());
    max_size = std::max(max_size, sub.size());
  }
  EXPECT_EQ(expect_begin, range.end);
  EXPECT_LE(max_size - min_size, 1u);
}

/// Sum of a seed-keyed pseudo-random value over the range: any change in
/// how streams are derived or folded changes the sum.
double range_checksum(int threads, bool clamp, std::size_t shards,
                      const exp::RangeOptions& base) {
  exp::ShardedRunner runner(threads, clamp);
  exp::RangeOptions opt = base;
  opt.shards = shards;
  double sum = 0.0;
  std::uint64_t order_check = base.range.begin;
  const exp::RangeStats stats = runner.run_range(
      opt, util::Rng(42),
      [](std::uint64_t seed, util::Rng& rng) {
        return rng.uniform(0.0, 1.0) + static_cast<double>(seed) * 1e-6;
      },
      [&](std::uint64_t seed, double r) {
        EXPECT_EQ(seed, order_check++);  // folds strictly in seed order
        sum += r;
      },
      [] { return std::string(); }, [](const std::string&) {});
  EXPECT_TRUE(stats.complete);
  return sum;
}

TEST(RunRangeTest, ShardAndThreadInvariant) {
  exp::RangeOptions base;
  base.range = {1000, 1200};
  const double reference = range_checksum(1, true, 1, base);
  // Shard boundaries must not reach the stream derivation.
  EXPECT_EQ(reference, range_checksum(1, true, 7, base));
  // clamp_to_hardware=false forces the pool path even on a 1-core host.
  EXPECT_EQ(reference, range_checksum(2, false, 1, base));
  EXPECT_EQ(reference, range_checksum(4, false, 13, base));
}

TEST(RunRangeTest, BudgetPausesAndResumeMatchesStraightRun) {
  const std::string ck = temp_path("rtpool_test_runrange_ck.json");
  std::filesystem::remove(ck);

  exp::RangeOptions opt;
  opt.range = {0, 100};
  opt.shards = 10;
  opt.checkpoint_path = ck;
  opt.fingerprint = "runrange-test-v1";
  opt.budget_seeds = 35;

  const auto eval = [](std::uint64_t, util::Rng& rng) {
    return rng.uniform(0.0, 1.0);
  };

  double sum = 0.0;
  std::uint64_t folded = 0;
  const auto fold = [&](std::uint64_t, double r) {
    sum += r;
    ++folded;
  };
  const auto save = [&] {
    std::ostringstream os;
    util::JsonWriter w(os);
    w.begin_object().kv("sum", sum).kv("folded", folded).end_object();
    return os.str();
  };
  const auto load = [&](const std::string& blob) {
    const util::JsonValue doc = util::parse_json(blob);
    sum = doc.at("sum").as_number();
    folded = static_cast<std::uint64_t>(doc.at("folded").as_number());
  };

  exp::ShardedRunner runner(1);
  const exp::RangeStats first = runner.run_range(opt, util::Rng(9), eval, fold,
                                                 save, load);
  EXPECT_FALSE(first.complete);
  EXPECT_EQ(first.seeds_evaluated, 40u);  // 35 rounded up to a shard boundary
  EXPECT_TRUE(std::filesystem::exists(ck));

  opt.budget_seeds = 0;
  opt.resume = true;
  const exp::RangeStats second = runner.run_range(opt, util::Rng(9), eval, fold,
                                                  save, load);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.shards_restored, 4u);
  EXPECT_EQ(folded, 100u);

  // Straight-through reference: bit-identical accumulator.
  double ref_sum = 0.0;
  exp::RangeOptions straight;
  straight.range = opt.range;
  straight.shards = opt.shards;
  runner.run_range(straight, util::Rng(9), eval,
                   [&](std::uint64_t, double r) { ref_sum += r; },
                   [] { return std::string(); }, [](const std::string&) {});
  EXPECT_EQ(sum, ref_sum);
  std::filesystem::remove(ck);
}

TEST(RunRangeTest, ResumeValidatesFingerprintRangeAndShards) {
  const std::string ck = temp_path("rtpool_test_runrange_bad_ck.json");
  std::filesystem::remove(ck);

  exp::RangeOptions opt;
  opt.range = {0, 20};
  opt.shards = 4;
  opt.checkpoint_path = ck;
  opt.fingerprint = "config-A";
  opt.budget_seeds = 5;

  exp::ShardedRunner runner(1);
  const auto eval = [](std::uint64_t s, util::Rng&) { return s; };
  const auto fold = [](std::uint64_t, std::uint64_t) {};
  const auto save = [] { return std::string("{}"); };
  const auto load = [](const std::string&) {};
  runner.run_range(opt, util::Rng(1), eval, fold, save, load);

  opt.budget_seeds = 0;
  opt.resume = true;
  opt.fingerprint = "config-B";  // different job identity
  EXPECT_THROW(runner.run_range(opt, util::Rng(1), eval, fold, save, load),
               std::runtime_error);

  opt.fingerprint = "config-A";
  opt.shards = 5;  // different shard plan
  EXPECT_THROW(runner.run_range(opt, util::Rng(1), eval, fold, save, load),
               std::runtime_error);

  opt.shards = 4;
  opt.resume = false;
  std::filesystem::remove(ck);
  opt.resume = true;  // missing file
  EXPECT_THROW(runner.run_range(opt, util::Rng(1), eval, fold, save, load),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// CorpusRunner
// ---------------------------------------------------------------------------

/// A cheap scenario mix for fast corpus tests: tiny single-task sets whose
/// WCET draw straddles the deadline, so some seeds produce sim misses.
gen::ScenarioSpace tiny_space() {
  gen::ScenarioSpace space;
  space.add({"tiny-seq", [](std::size_t cores, util::Rng& rng) {
               TaskSet ts(cores);
               DagTaskBuilder b("t0");
               b.add_node(rng.uniform(1.0, 15.0));
               b.period(10.0);
               ts.add(b.build());
               return ts;
             }});
  space.add({"tiny-blocking", [](std::size_t cores, util::Rng& rng) {
               TaskSet ts(cores);
               DagTaskBuilder b("t0");
               const auto fj = b.add_blocking_fork_join(
                   1.0, 1.0, {rng.uniform(1.0, 6.0), rng.uniform(1.0, 6.0)});
               (void)fj;
               b.period(rng.uniform(8.0, 30.0));
               ts.add(b.build());
               return ts;
             }});
  return space;
}

CorpusConfig tiny_config(std::uint64_t begin, std::uint64_t end) {
  CorpusConfig config;
  config.seed_begin = begin;
  config.seed_end = end;
  config.shards = 6;
  config.cores = 3;
  config.windows = 2.0;
  config.space = tiny_space();
  config.analyzers = {spec_for("global-limited"), spec_for("global-baseline")};
  return config;
}

/// The statistics of a result, ignoring the per-invocation range
/// bookkeeping (shards run/restored legitimately differ under resume).
bool same_statistics(const CorpusResult& a, const CorpusResult& b) {
  return a.per_analyzer == b.per_analyzer && a.sets == b.sets &&
         a.per_scenario_sets == b.per_scenario_sets &&
         a.generation_errors == b.generation_errors &&
         a.safety_violations == b.safety_violations &&
         a.scenario_names == b.scenario_names;
}

TEST(CorpusRunnerTest, CountsAreConsistent) {
  const CorpusResult r = CorpusRunner(tiny_config(0, 60)).run();
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.sets + r.generation_errors, 60u);
  std::uint64_t per_scenario = 0;
  for (const std::uint64_t n : r.per_scenario_sets) per_scenario += n;
  EXPECT_EQ(per_scenario, r.sets);
  ASSERT_EQ(r.per_analyzer.size(), 2u);
  for (const AnalyzerStats& st : r.per_analyzer) {
    EXPECT_EQ(st.sets, r.sets);
    EXPECT_EQ(st.sim_checked,
              st.sim_safe + st.sim_deadline_miss + st.sim_deadlock);
    EXPECT_LE(st.gap.count(), st.analysis_schedulable);
  }
  // The sound analyzer must hold the safety direction on this easy mix.
  EXPECT_EQ(r.per_analyzer[0].safety_violations, 0u);
  EXPECT_EQ(r.safety_violations, 0u);
  // The mix straddles the deadline, so both verdicts must occur.
  EXPECT_GT(r.per_analyzer[0].analysis_schedulable, 0u);
  EXPECT_LT(r.per_analyzer[0].analysis_schedulable, r.sets);
}

TEST(CorpusRunnerTest, ShardCountInvariant) {
  CorpusConfig a = tiny_config(0, 40);
  a.shards = 1;
  CorpusConfig b = tiny_config(0, 40);
  b.shards = 11;
  EXPECT_TRUE(same_statistics(CorpusRunner(a).run(), CorpusRunner(b).run()));
}

TEST(CorpusRunnerTest, KillResumeBitIdentical) {
  const std::string ck = temp_path("rtpool_test_corpus_ck.json");
  std::filesystem::remove(ck);

  CorpusConfig straight_cfg = tiny_config(0, 48);
  const CorpusResult straight = CorpusRunner(straight_cfg).run();

  CorpusConfig paused_cfg = tiny_config(0, 48);
  paused_cfg.checkpoint_path = ck;
  paused_cfg.budget_sets = 20;  // "kill" after ~3 of 6 shards
  const CorpusResult paused = CorpusRunner(paused_cfg).run();
  EXPECT_FALSE(paused.complete);

  CorpusConfig resume_cfg = tiny_config(0, 48);
  resume_cfg.checkpoint_path = ck;
  resume_cfg.resume = true;
  const CorpusResult resumed = CorpusRunner(resume_cfg).run();
  EXPECT_TRUE(resumed.complete);
  EXPECT_GT(resumed.range.shards_restored, 0u);
  EXPECT_TRUE(same_statistics(straight, resumed));
  std::filesystem::remove(ck);
}

TEST(CorpusRunnerTest, ResumeRejectsDifferentConfig) {
  const std::string ck = temp_path("rtpool_test_corpus_bad_ck.json");
  std::filesystem::remove(ck);

  CorpusConfig cfg = tiny_config(0, 24);
  cfg.checkpoint_path = ck;
  cfg.budget_sets = 8;
  CorpusRunner(cfg).run();

  CorpusConfig other = tiny_config(0, 24);
  other.checkpoint_path = ck;
  other.resume = true;
  other.cores = 4;  // different fingerprint
  other.budget_sets = 0;
  EXPECT_THROW(CorpusRunner(other).run(), std::runtime_error);
  std::filesystem::remove(ck);
}

TEST(CorpusRunnerTest, FingerprintCoversConfigIdentity) {
  const std::string base = CorpusRunner(tiny_config(0, 10)).fingerprint();
  CorpusConfig cores = tiny_config(0, 10);
  cores.cores = 7;
  EXPECT_NE(base, CorpusRunner(cores).fingerprint());
  CorpusConfig analyzers = tiny_config(0, 10);
  analyzers.analyzers = {spec_for("global-limited")};
  EXPECT_NE(base, CorpusRunner(analyzers).fingerprint());
  // The seed range is validated separately by the checkpoint itself.
  EXPECT_EQ(base, CorpusRunner(tiny_config(0, 99)).fingerprint());
}

TEST(CorpusRunnerTest, GapCsvAndSummaryRender) {
  const CorpusConfig cfg = tiny_config(0, 30);
  const CorpusResult r = CorpusRunner(cfg).run();

  const std::string csv_path = temp_path("rtpool_test_corpus_gap.csv");
  write_gap_csv(csv_path, r);
  std::ifstream csv(csv_path);
  std::string header;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_NE(header.find("analyzer"), std::string::npos);
  EXPECT_NE(header.find("gap_p99"), std::string::npos);
  std::size_t rows = 0;
  for (std::string line; std::getline(csv, line);) ++rows;
  EXPECT_EQ(rows, r.per_analyzer.size());
  std::filesystem::remove(csv_path);

  const util::JsonValue doc =
      util::parse_json(render_summary_json(cfg, r, 0.0));
  EXPECT_EQ(doc.at("schema").as_string(), "rtpool-corpus-summary-v1");
  EXPECT_EQ(static_cast<std::uint64_t>(doc.at("sets").as_number()), r.sets);
  EXPECT_FALSE(doc.contains("wall_s"));  // deterministic mode
  EXPECT_EQ(doc.at("analyzers").as_array().size(), r.per_analyzer.size());
}

// ---------------------------------------------------------------------------
// Witness bundles + fault injection
// ---------------------------------------------------------------------------

TEST(WitnessTest, JsonRoundTrip) {
  WitnessBundle bundle;
  bundle.seed = 123;
  bundle.root_seed = 1;
  bundle.scenario = "tiny-seq";
  bundle.analyzer = "global-limited";
  bundle.policy = sim::SchedulingPolicy::kPartitioned;
  analysis::TaskSetPartition partition;
  partition.per_task.push_back({{0, 1, 0}});
  partition.per_task.push_back({{2}});
  bundle.partition = partition;
  bundle.windows = 3.0;
  bundle.taskset_text = "cores 2\n";
  bundle.outcome = sim::SimOutcome::kDeadlock;
  bundle.violation_task = 1;
  bundle.violation_time = 17.5;
  bundle.description = "stalled";

  const WitnessBundle back = parse_witness_json(render_witness_json(bundle));
  EXPECT_EQ(back.seed, bundle.seed);
  EXPECT_EQ(back.scenario, bundle.scenario);
  EXPECT_EQ(back.analyzer, bundle.analyzer);
  EXPECT_EQ(back.policy, bundle.policy);
  ASSERT_TRUE(back.partition.has_value());
  EXPECT_EQ(back.partition->per_task.size(), 2u);
  EXPECT_EQ(back.partition->per_task[0].thread_of,
            (std::vector<analysis::ThreadId>{0, 1, 0}));
  EXPECT_EQ(back.outcome, bundle.outcome);
  EXPECT_EQ(back.violation_time, bundle.violation_time);
  EXPECT_EQ(back.taskset_text, bundle.taskset_text);

  // No partition: the member round-trips as JSON null.
  bundle.partition.reset();
  EXPECT_FALSE(
      parse_witness_json(render_witness_json(bundle)).partition.has_value());

  EXPECT_THROW(parse_witness_json("{\"schema\":\"other\"}"),
               std::runtime_error);
}

TEST(WitnessTest, InjectedOptimisticAnalyzerYieldsReproducibleWitness) {
  const std::string dir = temp_path("rtpool_test_witness_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  CorpusConfig cfg = tiny_config(0, 30);
  cfg.analyzers = {register_forced_optimistic_analyzer()};
  cfg.witness_dir = dir;
  const CorpusResult r = CorpusRunner(cfg).run();

  // The forced-optimistic analyzer accepts everything; the mix contains
  // guaranteed sim misses, so violations and witness files must appear.
  ASSERT_EQ(r.per_analyzer.size(), 1u);
  EXPECT_GT(r.safety_violations, 0u);
  EXPECT_EQ(r.per_analyzer[0].safety_violations, r.safety_violations);
  EXPECT_GT(r.witnesses_written, 0u);

  std::size_t files = 0;
  std::string one;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    one = entry.path().string();
  }
  EXPECT_EQ(files, r.witnesses_written);

  const WitnessBundle bundle = load_witness(one);
  EXPECT_EQ(bundle.analyzer, "test-forced-optimistic");
  EXPECT_NE(bundle.outcome, sim::SimOutcome::kOk);
  const ReplayResult replay = replay_witness(bundle);
  EXPECT_TRUE(replay.analysis_schedulable);
  EXPECT_TRUE(replay.outcome_matches);
  EXPECT_TRUE(replay.reproduced);

  std::filesystem::remove_all(dir);
}

TEST(WitnessTest, WitnessCapLimitsFilesNotCounts) {
  const std::string dir = temp_path("rtpool_test_witness_cap_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  CorpusConfig cfg = tiny_config(0, 30);
  cfg.analyzers = {register_forced_optimistic_analyzer()};
  cfg.witness_dir = dir;
  cfg.max_witnesses = 2;
  const CorpusResult r = CorpusRunner(cfg).run();
  EXPECT_GT(r.safety_violations, 2u);
  EXPECT_EQ(r.witnesses_written, 2u);

  std::filesystem::remove_all(dir);
}

TEST(ForcedOptimisticTest, RegistrationIsIdempotent) {
  const AnalyzerSpec a = register_forced_optimistic_analyzer();
  const AnalyzerSpec b = register_forced_optimistic_analyzer();
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.mode, OracleMode::kAssertSafety);
  ASSERT_NE(analysis::find_analyzer("test-forced-optimistic"), nullptr);
}

}  // namespace
}  // namespace rtpool::corpus
