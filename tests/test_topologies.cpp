// Unit tests for the structured topology builders (gen/topologies.h).
#include <gtest/gtest.h>

#include "analysis/antichain.h"
#include "analysis/concurrency.h"
#include "gen/topologies.h"
#include "sim/engine.h"

namespace rtpool::gen {
namespace {

using model::NodeType;

TopologyOptions opts(bool blocking, util::Time period = 10000.0) {
  TopologyOptions o;
  o.blocking = blocking;
  o.period = period;
  return o;
}

TEST(TopologyTest, DnnStructure) {
  util::Rng rng(1);
  const auto t = make_dnn_task("dnn", 3, 2, 4, opts(true), rng);
  // Nodes: 1 input + 3 layer barriers + 3*2 regions of (2 + 4) nodes.
  EXPECT_EQ(t.node_count(), 1u + 3u + 6u * 6u);
  EXPECT_EQ(t.blocking_fork_count(), 6u);
  // Only the operators of one layer are concurrent: b̄ = ops_per_layer.
  EXPECT_EQ(analysis::max_affecting_forks(t), 2u);
  EXPECT_EQ(analysis::max_simultaneous_suspensions(t), 2u);
}

TEST(TopologyTest, DnnNonBlockingHasNoRegions) {
  util::Rng rng(1);
  const auto t = make_dnn_task("dnn", 3, 2, 4, opts(false), rng);
  EXPECT_EQ(t.blocking_fork_count(), 0u);
  EXPECT_EQ(analysis::max_affecting_forks(t), 0u);
}

TEST(TopologyTest, MapReduceStructure) {
  util::Rng rng(2);
  const auto t = make_map_reduce_task("mr", 8, opts(true), rng);
  EXPECT_EQ(t.blocking_fork_count(), 1u);
  EXPECT_EQ(analysis::max_affecting_forks(t), 1u);
  // The reduce tree funnels into a single sink.
  EXPECT_EQ(t.dag().out_degree(t.sink()), 0u);
  EXPECT_EQ(t.type(t.sink()), NodeType::NB);
}

TEST(TopologyTest, MapReduceMinimumMappers) {
  util::Rng rng(2);
  EXPECT_THROW(make_map_reduce_task("mr", 1, opts(true), rng),
               std::invalid_argument);
  const auto t = make_map_reduce_task("mr", 2, opts(true), rng);
  EXPECT_GE(t.node_count(), 6u);
}

TEST(TopologyTest, PipelineRegionsNeverOverlap) {
  util::Rng rng(3);
  const auto t = make_pipeline_task("pipe", 5, 6, opts(true), rng);
  EXPECT_EQ(t.blocking_fork_count(), 5u);
  // Stages are barrier-separated: only one region live at a time.
  EXPECT_EQ(analysis::max_simultaneous_suspensions(t), 1u);
  EXPECT_EQ(analysis::max_affecting_forks(t), 1u);
}

TEST(TopologyTest, WavefrontDependencies) {
  util::Rng rng(4);
  const auto t = make_wavefront_task("wave", 4, 5, opts(true), rng);
  EXPECT_EQ(t.node_count(), 20u);
  EXPECT_EQ(t.blocking_fork_count(), 0u);  // blocking ignored by design
  // Critical path visits rows+cols-1 cells.
  const auto& path = t.critical_path();
  EXPECT_EQ(path.size(), 4u + 5u - 1u);
}

TEST(TopologyTest, DivideConquerConcurrencyGrowsExponentially) {
  util::Rng rng(5);
  for (int depth : {1, 2, 3, 4}) {
    const auto t = make_divide_conquer_task("dc", depth, opts(true), rng);
    const auto expected = static_cast<std::size_t>(1) << (depth - 1);
    EXPECT_EQ(t.blocking_fork_count(), expected) << "depth=" << depth;
    EXPECT_EQ(analysis::max_simultaneous_suspensions(t), expected)
        << "depth=" << depth;
  }
}

TEST(TopologyTest, ValidationErrors) {
  util::Rng rng(6);
  TopologyOptions bad = opts(true);
  bad.period = 0.0;
  EXPECT_THROW(make_dnn_task("x", 1, 1, 1, bad, rng), std::invalid_argument);
  EXPECT_THROW(make_dnn_task("x", 0, 1, 1, opts(true), rng), std::invalid_argument);
  EXPECT_THROW(make_pipeline_task("x", 0, 1, opts(true), rng), std::invalid_argument);
  EXPECT_THROW(make_wavefront_task("x", 0, 3, opts(true), rng), std::invalid_argument);
  EXPECT_THROW(make_divide_conquer_task("x", 0, opts(true), rng),
               std::invalid_argument);
  TopologyOptions bad_wcet = opts(true);
  bad_wcet.wcet_max = 0.5;  // < wcet_min
  EXPECT_THROW(make_pipeline_task("x", 1, 1, bad_wcet, rng), std::invalid_argument);
}

/// Every topology simulates cleanly on a big-enough pool (blocking variant
/// included): construction produced executable, deadlock-free structures.
TEST(TopologyTest, AllTopologiesSimulate) {
  util::Rng rng(7);
  std::vector<model::DagTask> tasks;
  tasks.push_back(make_dnn_task("dnn", 2, 2, 3, opts(true), rng));
  tasks.push_back(make_map_reduce_task("mr", 6, opts(true), rng));
  tasks.push_back(make_pipeline_task("pipe", 3, 4, opts(true), rng));
  tasks.push_back(make_wavefront_task("wave", 3, 3, opts(true), rng));
  tasks.push_back(make_divide_conquer_task("dc", 3, opts(true), rng));

  for (auto& task : tasks) {
    const std::size_t m =
        analysis::max_simultaneous_suspensions(task) + 2;  // l̄ >= 2
    model::TaskSet ts(m);
    const std::string name = task.name();
    ts.add(std::move(task));
    sim::SimConfig cfg;
    cfg.horizon = 10000.0;
    const auto run = sim::simulate(ts, cfg);
    EXPECT_FALSE(run.deadlock.has_value()) << name;
    EXPECT_EQ(run.per_task[0].jobs_completed, 1u) << name;
  }
}

TEST(TopologyTest, DeterministicPerSeed) {
  util::Rng a(11);
  util::Rng b(11);
  const auto ta = make_dnn_task("d", 2, 2, 2, opts(true), a);
  const auto tb = make_dnn_task("d", 2, 2, 2, opts(true), b);
  ASSERT_EQ(ta.node_count(), tb.node_count());
  for (model::NodeId v = 0; v < ta.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(ta.wcet(v), tb.wcet(v));
    EXPECT_EQ(ta.type(v), tb.type(v));
  }
}

}  // namespace
}  // namespace rtpool::gen
