// Certificate-carrying analysis tests (analysis/cert.h + cert_check.h):
//
//  * golden acceptance — every registered analyzer's certificate over the
//    repo task sets and a Figure-2-style generated corpus passes the
//    independent checker;
//  * warm == cold — certificates emitted under a warm-started RtaContext
//    are bit-identical to cold ones (Report operator== compares them);
//  * negative paths — mutating a valid certificate (bumping a fixed point,
//    swapping an antichain member for a comparable fork, overloading a
//    core, inflating a federated allocation, …) is rejected with the
//    expected CheckFailureKind;
//  * renderers — lint::render_json output parses back, render_text names
//    the analyzer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/cert_check.h"
#include "analysis/rta_context.h"
#include "gen/taskset_generator.h"
#include "lint/render.h"
#include "model/builder.h"
#include "model/io.h"
#include "util/json.h"
#include "util/rng.h"

namespace rtpool {
namespace {

namespace cert = analysis::cert;

/// Figure-2-style generator parameters (m = 8, pinned blocking window so
/// every set has blocking forks).
gen::TaskSetParams fig2_params(double utilization) {
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 6;
  params.nfj.min_branches = 3;
  params.nfj.max_branches = 5;
  params.blocking_window = gen::BlockingWindow{4, 4};
  params.total_utilization = utilization;
  return params;
}

model::TaskSet generated_set(std::uint64_t seed, double utilization) {
  util::Rng rng(seed);
  return gen::generate_task_set(fig2_params(utilization), rng);
}

std::vector<model::TaskSet> golden_corpus() {
  std::vector<model::TaskSet> corpus;
  for (const char* file :
       {"eq3_worst_fit", "fig1", "fig1c_deadlock", "mixed_set"})
    corpus.push_back(model::load_task_set(std::string(RTPOOL_SOURCE_DIR) +
                                          "/data/" + file + ".taskset"));
  for (std::uint64_t seed : {11u, 23u, 37u})
    for (double utilization : {1.4, 2.4, 4.8})
      corpus.push_back(generated_set(seed, utilization));
  return corpus;
}

/// Run `analyzer` with certificate emission on and return the Report.
analysis::Report certified_report(const analysis::Analyzer& analyzer,
                                  const model::TaskSet& ts,
                                  analysis::RtaContext* ctx = nullptr) {
  analysis::AnalyzerOptions opts;
  opts.diagnostics = true;
  std::optional<analysis::RtaContext> local;
  if (ctx == nullptr) {
    local.emplace(ts);
    ctx = &*local;
  }
  return analyzer.analyze(ts, *ctx, opts);
}

/// Expect the checker to reject `mutated` with `kind` (any task index).
void expect_rejected(const model::TaskSet& ts, const cert::Certificate& mutated,
                     cert::CheckFailureKind kind, const char* what) {
  const cert::CheckResult result = cert::check_certificate(ts, mutated);
  ASSERT_FALSE(result.ok()) << what << ": mutation was accepted";
  EXPECT_EQ(result.failure->kind, kind)
      << what << ": rejected as " << cert::to_string(result.failure->kind)
      << " (" << result.failure->detail << ")";
}

// ---- golden acceptance ----

TEST(CertGoldenTest, EveryAnalyzerCertifiesCorpus) {
  for (const model::TaskSet& ts : golden_corpus()) {
    analysis::RtaContext ctx(ts);
    for (const analysis::Analyzer* analyzer : analysis::registered_analyzers()) {
      const analysis::Report rep = certified_report(*analyzer, ts, &ctx);
      ASSERT_NE(rep.certificate, nullptr) << analyzer->name();
      EXPECT_EQ(rep.certificate->analyzer, std::string(analyzer->name()));
      EXPECT_EQ(rep.certificate->schedulable, rep.schedulable)
          << analyzer->name();
      const cert::CheckResult result =
          cert::check_certificate(ts, *rep.certificate);
      EXPECT_TRUE(result.ok())
          << analyzer->name() << ": "
          << cert::to_string(result.failure->kind) << " — "
          << result.failure->detail;
      EXPECT_GT(result.claims_checked, 0u) << analyzer->name();
    }
  }
}

TEST(CertGoldenTest, DiagnosticsOffAttachesNoCertificate) {
  const model::TaskSet ts = generated_set(11, 2.4);
  for (const analysis::Analyzer* analyzer : analysis::registered_analyzers())
    EXPECT_EQ(analyzer->analyze(ts).certificate, nullptr) << analyzer->name();
}

TEST(CertGoldenTest, PartitionFailureCertifies) {
  // Overloaded set: Algorithm 1 / worst-fit cannot place it; the analyzer
  // still emits a (checkable) partition-failure certificate.
  const model::TaskSet ts = generated_set(5, 7.8);
  for (const char* name : {"partitioned-proposed", "partitioned-baseline"}) {
    const analysis::Report rep =
        certified_report(analysis::get_analyzer(name), ts);
    ASSERT_NE(rep.certificate, nullptr);
    const cert::CheckResult result =
        cert::check_certificate(ts, *rep.certificate);
    EXPECT_TRUE(result.ok()) << name << ": "
                             << (result.ok() ? ""
                                             : result.failure->detail);
    if (!rep.certificate->partitioned->partition_failure.empty()) {
      EXPECT_FALSE(rep.schedulable);
    }
  }
}

// ---- warm == cold ----

TEST(CertWarmTest, WarmCertificatesBitIdenticalToCold) {
  const model::TaskSet ts = generated_set(23, 2.4);
  for (const analysis::Analyzer* analyzer : analysis::registered_analyzers()) {
    if (!analyzer->capabilities().supports_warm_start) continue;
    analysis::RtaContext warm_ctx(ts);
    for (double scale : {1.0, 1.15, 0.85, 1.3, 1.0}) {
      analysis::AnalyzerOptions opts;
      opts.diagnostics = true;
      opts.wcet_scale = scale;
      const analysis::Report warm = analyzer->analyze(ts, warm_ctx, opts);
      analysis::RtaContext cold_ctx(ts);
      const analysis::Report cold = analyzer->analyze(ts, cold_ctx, opts);
      ASSERT_NE(warm.certificate, nullptr) << analyzer->name();
      ASSERT_NE(cold.certificate, nullptr) << analyzer->name();
      EXPECT_TRUE(*warm.certificate == *cold.certificate)
          << analyzer->name() << " at scale " << scale;
      EXPECT_TRUE(warm == cold) << analyzer->name() << " at scale " << scale;
    }
  }
}

// ---- negative paths: global family ----

TEST(CertMutationTest, BumpedFixedPointRejected) {
  const model::TaskSet ts = generated_set(11, 2.4);
  const analysis::Report rep =
      certified_report(analysis::get_analyzer("global-baseline"), ts);
  ASSERT_TRUE(cert::check_certificate(ts, *rep.certificate).ok());

  // The highest-priority task sees no interference, so its recurrence is
  // constant: any perturbation of its fixed point is inconsistent.
  const std::size_t top = ts.priority_order().front();
  ASSERT_EQ(rep.certificate->global->per_task[top].claim,
            cert::TaskClaim::kConverged);

  cert::Certificate mutated = *rep.certificate;
  mutated.global->per_task[top].response *= 1.5;
  expect_rejected(ts, mutated, cert::CheckFailureKind::kFixedPointInconsistent,
                  "bumped fixed point");
}

TEST(CertMutationTest, FlippedSetVerdictRejected) {
  const model::TaskSet ts = generated_set(11, 2.4);
  const analysis::Report rep =
      certified_report(analysis::get_analyzer("global-limited"), ts);
  cert::Certificate mutated = *rep.certificate;
  mutated.schedulable = !mutated.schedulable;
  expect_rejected(ts, mutated, cert::CheckFailureKind::kMalformed,
                  "flipped set verdict");
}

TEST(CertMutationTest, SwappedAntichainMemberRejected) {
  // Blocking regions r1 -> r2 in series with r3 parallel to both: the
  // maximum antichain is 2 (one series fork plus r3's), and the unused
  // series fork is comparable to whichever series fork the witness kept.
  // Swapping it in for r3's fork breaks pairwise incomparability.
  model::DagTaskBuilder b("series-par");
  const model::NodeId src = b.add_node(1.0);
  const model::NodeId snk = b.add_node(1.0);
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  const auto r3 = b.add_blocking_fork_join(1.0, 1.0, {1.0});
  b.add_edge(src, r1.fork);
  b.add_edge(r1.join, r2.fork);
  b.add_edge(r2.join, snk);
  b.add_edge(src, r3.fork);
  b.add_edge(r3.join, snk);
  b.period(100.0).priority(0);
  model::TaskSet ts(8);
  ts.add(b.build());

  const analysis::Report rep =
      certified_report(analysis::get_analyzer("global-limited-antichain"), ts);
  ASSERT_TRUE(cert::check_certificate(ts, *rep.certificate).ok());
  const cert::GlobalTaskCert& tc = rep.certificate->global->per_task[0];
  ASSERT_TRUE(tc.concurrency.has_value());
  ASSERT_TRUE(tc.concurrency->antichain);
  ASSERT_EQ(tc.concurrency->bbar, 2u);

  // Swap in the blocking fork that is comparable to a REMAINING witness
  // member (replacing its incomparable partner).
  const model::DagTask& task = ts.task(0);
  const auto& forks = tc.concurrency->forks;
  bool swapped = false;
  for (std::size_t slot = 0; !swapped && slot < forks.size(); ++slot) {
    for (model::NodeId v = 0; !swapped && v < task.node_count(); ++v) {
      if (task.type(v) != model::NodeType::BF) continue;
      if (std::find(forks.begin(), forks.end(), v) != forks.end()) continue;
      for (std::size_t other = 0; other < forks.size(); ++other) {
        if (other == slot) continue;
        if (task.reachability().reaches(forks[other], v) ||
            task.reachability().reaches(v, forks[other])) {
          cert::Certificate mutated = *rep.certificate;
          mutated.global->per_task[0].concurrency->forks[slot] = v;
          expect_rejected(ts, mutated, cert::CheckFailureKind::kWitnessInvalid,
                          "swapped antichain member");
          swapped = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(swapped) << "no comparable fork available to swap in";
}

TEST(CertMutationTest, NonForkWitnessNodeRejected) {
  const model::TaskSet ts = generated_set(11, 2.4);
  const analysis::Report rep =
      certified_report(analysis::get_analyzer("global-limited-antichain"), ts);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const cert::GlobalTaskCert& tc = rep.certificate->global->per_task[i];
    if (!tc.concurrency.has_value() || tc.concurrency->forks.empty()) continue;
    // The source node of a generated DAG is never a blocking fork here:
    // pick any non-BF node as the bogus witness member.
    const model::DagTask& task = ts.task(i);
    for (model::NodeId v = 0; v < task.node_count(); ++v) {
      if (task.type(v) == model::NodeType::BF) continue;
      cert::Certificate mutated = *rep.certificate;
      mutated.global->per_task[i].concurrency->forks[0] = v;
      expect_rejected(ts, mutated, cert::CheckFailureKind::kWitnessInvalid,
                      "non-fork witness node");
      return;
    }
  }
  FAIL() << "corpus set had no antichain witness to corrupt";
}

TEST(CertMutationTest, InflatedConcurrencyBoundRejected) {
  const model::TaskSet ts = generated_set(11, 2.4);
  const analysis::Report rep =
      certified_report(analysis::get_analyzer("global-limited"), ts);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const cert::GlobalTaskCert& tc = rep.certificate->global->per_task[i];
    if (!tc.concurrency.has_value()) continue;
    // Claiming a larger b̄ than |forks| breaks the |forks| == bbar claim.
    cert::Certificate mutated = *rep.certificate;
    mutated.global->per_task[i].concurrency->bbar += 1;
    expect_rejected(ts, mutated, cert::CheckFailureKind::kWitnessInvalid,
                    "inflated b-bar");
    return;
  }
  FAIL() << "corpus set had no concurrency witness";
}

// ---- negative paths: partitioned family ----

/// A set the proposed partitioned analyzer fully certifies (partition
/// success and at least one converged task).
struct PartitionedFixture {
  model::TaskSet ts = model::TaskSet(1);
  analysis::Report rep;
  std::size_t converged = cert::kNoIndex;
};

PartitionedFixture partitioned_fixture(const char* analyzer_name) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    PartitionedFixture fx;
    fx.ts = generated_set(seed, 1.4);
    fx.rep = certified_report(analysis::get_analyzer(analyzer_name), fx.ts);
    const cert::PartitionedCert& pc = *fx.rep.certificate->partitioned;
    if (!pc.partition_failure.empty()) continue;
    for (std::size_t i = 0; i < pc.per_task.size(); ++i)
      if (pc.per_task[i].claim == cert::TaskClaim::kConverged) {
        fx.converged = i;
        return fx;
      }
  }
  ADD_FAILURE() << "no generated set yielded a converged partitioned task";
  return {};
}

TEST(CertMutationTest, OverloadedCoreRejected) {
  const PartitionedFixture fx = partitioned_fixture("partitioned-proposed");
  ASSERT_NE(fx.converged, cert::kNoIndex);
  cert::Certificate mutated = *fx.rep.certificate;
  ASSERT_FALSE(mutated.partitioned->core_load.empty());
  mutated.partitioned->core_load[0] += 0.25;
  expect_rejected(fx.ts, mutated, cert::CheckFailureKind::kPartitionInvalid,
                  "overloaded core");
}

TEST(CertMutationTest, BumpedSegmentBlockingRejected) {
  const PartitionedFixture fx = partitioned_fixture("partitioned-proposed");
  ASSERT_NE(fx.converged, cert::kNoIndex);
  cert::Certificate mutated = *fx.rep.certificate;
  ASSERT_FALSE(mutated.partitioned->per_task[fx.converged].segments.empty());
  mutated.partitioned->per_task[fx.converged].segments[0].blocking += 1.0;
  expect_rejected(fx.ts, mutated, cert::CheckFailureKind::kOperandMismatch,
                  "bumped FIFO blocking");
}

TEST(CertMutationTest, FlippedDeadlockVerdictRejected) {
  const PartitionedFixture fx = partitioned_fixture("partitioned-proposed");
  ASSERT_NE(fx.converged, cert::kNoIndex);
  cert::Certificate mutated = *fx.rep.certificate;
  cert::PartitionedTaskCert& tc = mutated.partitioned->per_task[fx.converged];
  ASSERT_TRUE(tc.deadlock_free);
  tc.deadlock_free = false;
  expect_rejected(fx.ts, mutated, cert::CheckFailureKind::kDeadlockClaimWrong,
                  "flipped deadlock-freedom");
}

TEST(CertMutationTest, ReassignedPartitionNodeRejected) {
  const PartitionedFixture fx = partitioned_fixture("partitioned-proposed");
  ASSERT_NE(fx.converged, cert::kNoIndex);
  cert::Certificate mutated = *fx.rep.certificate;
  // Moving one node to another thread desynchronizes the echoed core loads
  // (re-derived per core by the checker from the partition echo).
  std::vector<std::uint32_t>& threads =
      mutated.partitioned->thread_of[fx.converged];
  ASSERT_FALSE(threads.empty());
  threads[0] = (threads[0] + 1) % static_cast<std::uint32_t>(fx.ts.core_count());
  expect_rejected(fx.ts, mutated, cert::CheckFailureKind::kPartitionInvalid,
                  "reassigned partition node");
}

// ---- negative paths: federated family ----

/// Heavy parallel task (vol = 12, len = 3, U = 2): federated gives it a
/// dedicated allocation of ceil((12-3)/(6-3)) = 3 cores.
model::TaskSet heavy_plus_light_set() {
  model::TaskSet ts(8);
  {
    model::DagTaskBuilder b("heavy");
    b.add_fork_join(1.0, 1.0, std::vector<util::Time>(10, 1.0));
    b.period(6.0).priority(0);
    ts.add(b.build());
  }
  {
    model::DagTaskBuilder b("light");
    const model::NodeId a = b.add_node(1.0);
    const model::NodeId c = b.add_node(1.0);
    b.add_edge(a, c);
    b.period(50.0).priority(1);
    ts.add(b.build());
  }
  return ts;
}

TEST(CertMutationTest, InflatedFederatedAllocationRejected) {
  const model::TaskSet ts = heavy_plus_light_set();
  const analysis::Report rep =
      certified_report(analysis::get_analyzer("federated"), ts);
  ASSERT_TRUE(cert::check_certificate(ts, *rep.certificate).ok());
  const cert::FederatedTaskCert& tc = rep.certificate->federated->per_task[0];
  ASSERT_EQ(tc.claim, cert::TaskClaim::kDedicated);
  cert::Certificate mutated = *rep.certificate;
  mutated.federated->per_task[0].cores += 1;
  expect_rejected(ts, mutated, cert::CheckFailureKind::kAllocationInvalid,
                  "inflated dedicated allocation");
}

TEST(CertMutationTest, OverstatedDedicatedTotalRejected) {
  const model::TaskSet ts = heavy_plus_light_set();
  const analysis::Report rep =
      certified_report(analysis::get_analyzer("federated"), ts);
  cert::Certificate mutated = *rep.certificate;
  mutated.federated->dedicated_cores += 1;
  expect_rejected(ts, mutated, cert::CheckFailureKind::kAllocationInvalid,
                  "overstated dedicated total");
}

// ---- renderers ----

TEST(CertRenderTest, JsonRoundTripsAndTextNamesAnalyzer) {
  const model::TaskSet ts = generated_set(11, 2.4);
  for (const char* name :
       {"global-limited-antichain", "partitioned-proposed", "federated"}) {
    const analysis::Report rep =
        certified_report(analysis::get_analyzer(name), ts);
    ASSERT_NE(rep.certificate, nullptr);
    const std::string json = lint::render_json(*rep.certificate, ts);
    const util::JsonValue v = util::parse_json(json);
    EXPECT_EQ(v.at("tool").as_string(), "rtpool-certificate");
    EXPECT_EQ(v.at("analyzer").as_string(), name);
    EXPECT_EQ(v.at("schedulable").as_bool(), rep.schedulable);
    EXPECT_EQ(v.at("family").as_string(),
              std::string(cert::to_string(rep.certificate->family)));
    const std::string text = lint::render_text(*rep.certificate, ts);
    EXPECT_NE(text.find(name), std::string::npos);
    EXPECT_NE(text.find(ts.task(0).name()), std::string::npos);
  }
}

}  // namespace
}  // namespace rtpool
