// Unit tests for the discrete-event thread-pool simulator.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/partition.h"
#include "model/builder.h"
#include "sim/engine.h"
#include "sim/gantt.h"
#include "sim/trace_json.h"

namespace rtpool::sim {
namespace {

using analysis::NodeAssignment;
using analysis::TaskSetPartition;
using analysis::ThreadId;
using model::DagTask;
using model::DagTaskBuilder;
using model::NodeId;
using model::TaskSet;

/// pre(1) BF(2) {4,5,6}(BC) BJ(3) post(1): the Figure 1(a) shape.
DagTask fig1_task(const std::string& name = "fig1", util::Time period = 100.0) {
  DagTaskBuilder b(name);
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(2.0, 3.0, {4.0, 5.0, 6.0});
  const NodeId post = b.add_node(1.0);
  b.add_edge(pre, fj.fork);
  b.add_edge(fj.join, post);
  b.period(period);
  return b.build();
}

/// Same DAG with non-blocking typing.
DagTask fig1_nonblocking(const std::string& name = "fig1nb",
                         util::Time period = 100.0) {
  DagTaskBuilder b(name);
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_fork_join(2.0, 3.0, {4.0, 5.0, 6.0});
  const NodeId post = b.add_node(1.0);
  b.add_edge(pre, fj.fork);
  b.add_edge(fj.join, post);
  b.period(period);
  return b.build();
}

/// Two concurrent blocking regions (deadlocks on m = 2): Figure 1(c).
DagTask two_region_task(util::Time period = 100.0) {
  DagTaskBuilder b("replicas");
  const NodeId src = b.add_node(1.0);
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {2.0, 2.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {2.0, 2.0});
  const NodeId snk = b.add_node(1.0);
  b.add_edge(src, r1.fork);
  b.add_edge(src, r2.fork);
  b.add_edge(r1.join, snk);
  b.add_edge(r2.join, snk);
  b.period(period);
  return b.build();
}

SimConfig global_config(util::Time horizon) {
  SimConfig cfg;
  cfg.policy = SchedulingPolicy::kGlobal;
  cfg.horizon = horizon;
  return cfg;
}

TEST(SimTest, SequentialChain) {
  DagTaskBuilder b("chain");
  const NodeId n0 = b.add_node(1.0);
  const NodeId n1 = b.add_node(2.0);
  const NodeId n2 = b.add_node(3.0);
  b.add_edge(n0, n1);
  b.add_edge(n1, n2);
  b.period(50.0);
  TaskSet ts(2);
  ts.add(b.build());

  const SimResult r = simulate(ts, global_config(50.0));
  ASSERT_FALSE(r.deadlock.has_value());
  ASSERT_EQ(r.per_task[0].jobs_completed, 1u);
  EXPECT_NEAR(r.max_response(0), 6.0, 1e-9);
  EXPECT_FALSE(r.any_deadline_miss);
  EXPECT_EQ(r.per_task[0].min_available_concurrency, 2);
}

TEST(SimTest, NonBlockingForkJoinRunsInParallel) {
  TaskSet ts(2);
  ts.add(fig1_nonblocking());
  const SimResult r = simulate(ts, global_config(100.0));
  ASSERT_EQ(r.per_task[0].jobs_completed, 1u);
  // pre@1, fork@3; children on 2 threads: {4,6} on A, {5} then idle... FIFO:
  // c4 and c5 start at 3 (two threads), c4 ends 7, c6 runs 7..13, c5 ends 8.
  // join ready at 13, ends 16; post ends 17.
  EXPECT_NEAR(r.max_response(0), 17.0, 1e-9);
  EXPECT_EQ(r.per_task[0].min_available_concurrency, 2);
}

TEST(SimTest, BlockingForkJoinLosesAThread) {
  TaskSet ts(2);
  ts.add(fig1_task());
  const SimResult r = simulate(ts, global_config(100.0));
  ASSERT_FALSE(r.deadlock.has_value());
  ASSERT_EQ(r.per_task[0].jobs_completed, 1u);
  // Children serialize on the single remaining thread: 4+5+6 after t=3,
  // join 18..21, post 21..22 (Figure 1(b)).
  EXPECT_NEAR(r.max_response(0), 22.0, 1e-9);
  // While the fork is suspended only one thread remains available.
  EXPECT_EQ(r.per_task[0].min_available_concurrency, 1);
}

TEST(SimTest, TwoConcurrentRegionsDeadlockOnTwoThreads) {
  TaskSet ts(2);
  ts.add(two_region_task());
  const SimResult r = simulate(ts, global_config(100.0));
  ASSERT_TRUE(r.deadlock.has_value());
  EXPECT_EQ(r.deadlock->task_index, 0u);
  // Both forks executed (1 each after src@1), then both threads suspended.
  EXPECT_NEAR(r.deadlock->time, 2.0, 1e-9);
  EXPECT_EQ(r.per_task[0].min_available_concurrency, 0);
  EXPECT_TRUE(r.any_deadline_miss);
}

TEST(SimTest, TwoConcurrentRegionsFineOnThreeThreads) {
  TaskSet ts(3);
  ts.add(two_region_task());
  const SimResult r = simulate(ts, global_config(100.0));
  EXPECT_FALSE(r.deadlock.has_value());
  EXPECT_EQ(r.per_task[0].jobs_completed, 1u);
  EXPECT_GE(r.per_task[0].min_available_concurrency, 1);
}

TEST(SimTest, PeriodicJobsAndDeadlineMisses) {
  // C=6 chain, T=D=8, m=1, two tasks -> the lp task misses.
  TaskSet ts(1);
  {
    DagTaskBuilder b("hp");
    b.add_node(6.0);
    b.period(8.0).priority(0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("lp");
    b.add_node(5.0);  // U = 6/8 + 5/16 > 1: the lp task must miss
    b.period(16.0).priority(1);
    ts.add(b.build());
  }
  const SimResult r = simulate(ts, global_config(64.0));
  EXPECT_EQ(r.per_task[0].jobs_released, 8u);
  EXPECT_EQ(r.per_task[0].deadline_misses, 0u);
  EXPECT_TRUE(r.any_deadline_miss);
  EXPECT_GT(r.per_task[1].deadline_misses, 0u);
}

TEST(SimTest, PreemptionByHigherPriority) {
  // lp starts first epoch alone? No: synchronous release at 0; hp (prio 0)
  // takes the core; lp C=3 runs after hp C=2: R_lp = 5 on m=1.
  TaskSet ts(1);
  {
    DagTaskBuilder b("hp");
    b.add_node(2.0);
    b.period(10.0).priority(0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("lp");
    b.add_node(3.0);
    b.period(20.0).priority(1);
    ts.add(b.build());
  }
  const SimResult r = simulate(ts, global_config(20.0));
  EXPECT_NEAR(r.max_response(1), 5.0, 1e-9);
  EXPECT_NEAR(r.max_response(0), 2.0, 1e-9);
}

TEST(SimTest, TraceCoversExecution) {
  TaskSet ts(2);
  ts.add(fig1_task());
  SimConfig cfg = global_config(100.0);
  cfg.collect_trace = true;
  const SimResult r = simulate(ts, cfg);
  ASSERT_FALSE(r.trace.empty());
  double busy_time = 0.0;
  for (const ExecutionInterval& iv : r.trace) {
    EXPECT_LT(iv.start, iv.end);
    EXPECT_LT(iv.core, 2u);
    busy_time += iv.end - iv.start;
  }
  EXPECT_NEAR(busy_time, ts.task(0).volume(), 1e-6);
}

TEST(GanttTest, RendersRowsPerCoreWithLegend) {
  TaskSet ts(2);
  ts.add(fig1_task());
  SimConfig cfg = global_config(100.0);
  cfg.collect_trace = true;
  const SimResult r = simulate(ts, cfg);

  GanttOptions opts;
  opts.width = 40;
  const std::string art = render_ascii_gantt(ts, r.trace, opts);
  ASSERT_FALSE(art.empty());
  EXPECT_NE(art.find("core  0 |"), std::string::npos);
  EXPECT_NE(art.find("core  1 |"), std::string::npos);
  EXPECT_NE(art.find("A=fig1"), std::string::npos);
  EXPECT_NE(art.find('A'), std::string::npos);  // some execution is drawn
  // Two core rows of exactly `width` cells between the pipes.
  const auto row_start = art.find("core  0 |") + 9;
  const auto row_end = art.find('|', row_start);
  EXPECT_EQ(row_end - row_start, 40u);
}

TEST(GanttTest, EmptyTraceAndWindowEdgeCases) {
  TaskSet ts(1);
  ts.add(fig1_task());
  EXPECT_EQ(render_ascii_gantt(ts, {}), "");

  std::vector<ExecutionInterval> trace{{0, 0, 0, 1.0, 2.0}};
  GanttOptions opts;
  opts.start = 5.0;
  opts.end = 5.0;  // empty window
  EXPECT_EQ(render_ascii_gantt(ts, trace, opts), "");

  opts.end = 10.0;  // interval entirely left of the window: all idle
  const std::string art = render_ascii_gantt(ts, trace, opts);
  const auto row_start = art.find("core  0 |") + 9;
  const auto row_end = art.find('|', row_start);
  const std::string row = art.substr(row_start, row_end - row_start);
  EXPECT_EQ(row.find('A'), std::string::npos);
  EXPECT_EQ(row, std::string(row.size(), '.'));
}

TEST(SimTest, StopOnMiss) {
  TaskSet ts(1);
  DagTaskBuilder b("t");
  b.add_node(5.0);
  b.period(4.0).deadline(4.0);
  ts.add(b.build());
  SimConfig cfg = global_config(40.0);
  cfg.stop_on_miss = true;
  const SimResult r = simulate(ts, cfg);
  EXPECT_TRUE(r.any_deadline_miss);
  // Halted after the very first completion (which missed).
  EXPECT_LE(r.jobs.size(), 3u);
}

TEST(SimTest, SporadicJitterDelaysReleases) {
  TaskSet ts(1);
  DagTaskBuilder b("t");
  b.add_node(1.0);
  b.period(10.0);
  ts.add(b.build());
  SimConfig cfg = global_config(100.0);
  cfg.release_jitter_frac = 0.5;
  cfg.seed = 99;
  const SimResult r = simulate(ts, cfg);
  // Strictly periodic would fit 10 jobs; jitter must reduce that.
  EXPECT_LT(r.per_task[0].jobs_released, 10u);
  EXPECT_GE(r.per_task[0].jobs_released, 6u);
  EXPECT_FALSE(r.any_deadline_miss);
}

TEST(SimTest, PartitionedQueueBehindSuspendedThreadDelays) {
  // Blocking region with both children on the *fork's* thread: the children
  // can never run -> deadlock (the reduced-concurrency hazard, Lemma 3).
  TaskSet ts(2);
  ts.add(fig1_task());
  const DagTask& t = ts.task(0);
  const auto& region = t.blocking_regions()[0];

  NodeAssignment bad{std::vector<ThreadId>(t.node_count(), 0)};
  SimConfig cfg;
  cfg.policy = SchedulingPolicy::kPartitioned;
  cfg.horizon = 100.0;
  cfg.partition = TaskSetPartition{{bad}};
  const SimResult r = simulate(ts, cfg);
  ASSERT_TRUE(r.deadlock.has_value());

  // Segregating the members on the other thread resolves it.
  NodeAssignment good = bad;
  region.members.for_each([&](std::size_t v) { good.thread_of[v] = 1; });
  cfg.partition = TaskSetPartition{{good}};
  const SimResult ok = simulate(ts, cfg);
  EXPECT_FALSE(ok.deadlock.has_value());
  EXPECT_EQ(ok.per_task[0].jobs_completed, 1u);
  // Children serialized on thread 1: same 22 as the global 2-thread case.
  EXPECT_NEAR(ok.max_response(0), 22.0, 1e-9);
}

TEST(SimTest, WorkStealingRescuesBadPartition) {
  // All nodes on the fork's thread deadlocks under strict per-thread FIFO
  // (see PartitionedQueueBehindSuspendedThreadDelays); with work stealing
  // the idle sibling steals the stranded children (footnote 1 behaviour).
  TaskSet ts(2);
  ts.add(fig1_task());
  SimConfig cfg;
  cfg.policy = SchedulingPolicy::kPartitioned;
  cfg.horizon = 100.0;
  cfg.partition = TaskSetPartition{
      {NodeAssignment{std::vector<ThreadId>(ts.task(0).node_count(), 0)}}};

  const SimResult strict = simulate(ts, cfg);
  ASSERT_TRUE(strict.deadlock.has_value());

  cfg.work_stealing = true;
  const SimResult stealing = simulate(ts, cfg);
  EXPECT_FALSE(stealing.deadlock.has_value());
  EXPECT_EQ(stealing.per_task[0].jobs_completed, 1u);
  // Thread 1 serializes the stolen children, like the global schedule.
  EXPECT_NEAR(stealing.max_response(0), 22.0, 1e-9);
}

TEST(SimTest, WorkStealingMatchesGlobalBehaviour) {
  // Footnote 1: per-thread queues + stealing replicate global scheduling.
  TaskSet ts(3);
  ts.add(two_region_task());

  SimConfig global_cfg = global_config(200.0);
  const SimResult global_run = simulate(ts, global_cfg);

  SimConfig stealing_cfg;
  stealing_cfg.policy = SchedulingPolicy::kPartitioned;
  stealing_cfg.horizon = 200.0;
  stealing_cfg.work_stealing = true;
  // Pathological static assignment: everything on thread 0.
  stealing_cfg.partition = TaskSetPartition{
      {NodeAssignment{std::vector<ThreadId>(ts.task(0).node_count(), 0)}}};
  const SimResult stealing_run = simulate(ts, stealing_cfg);

  ASSERT_FALSE(global_run.deadlock.has_value());
  ASSERT_FALSE(stealing_run.deadlock.has_value());
  EXPECT_EQ(stealing_run.per_task[0].jobs_completed,
            global_run.per_task[0].jobs_completed);
}

TEST(TraceJsonTest, EmitsValidChromeTrace) {
  TaskSet ts(2);
  ts.add(fig1_task());
  SimConfig cfg = global_config(100.0);
  cfg.collect_trace = true;
  const SimResult r = simulate(ts, cfg);

  std::ostringstream os;
  write_chrome_trace(os, ts, r);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("fig1/v"), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"BF\""), std::string::npos);
  EXPECT_EQ(out.find("DEADLOCK"), std::string::npos);
}

TEST(TraceJsonTest, MarksDeadlocks) {
  TaskSet ts(2);
  ts.add(two_region_task());
  SimConfig cfg = global_config(100.0);
  cfg.collect_trace = true;
  const SimResult r = simulate(ts, cfg);
  ASSERT_TRUE(r.deadlock.has_value());

  std::ostringstream os;
  write_chrome_trace(os, ts, r);
  EXPECT_NE(os.str().find("DEADLOCK"), std::string::npos);
}

TEST(SimTest, ConfigValidation) {
  TaskSet ts(2);
  ts.add(fig1_task());
  SimConfig cfg;
  cfg.horizon = 0.0;
  EXPECT_THROW(simulate(ts, cfg), std::invalid_argument);

  cfg.horizon = 10.0;
  cfg.policy = SchedulingPolicy::kPartitioned;
  EXPECT_THROW(simulate(ts, cfg), std::invalid_argument);  // no partition

  cfg.partition = TaskSetPartition{};  // wrong size
  EXPECT_THROW(simulate(ts, cfg), std::invalid_argument);

  cfg.partition = TaskSetPartition{{NodeAssignment{
      std::vector<ThreadId>(ts.task(0).node_count(), 5)}}};  // bad thread id
  EXPECT_THROW(simulate(ts, cfg), std::invalid_argument);
}

TEST(SimTest, RepeatedRunsAreBitIdentical) {
  // The simulator is a pure function of (task set, config): every field of
  // SimResult — job records, per-task stats, the full trace — must be
  // bit-identical across repeated runs, under both policies and across
  // pool sizes.
  for (const std::size_t m : {2u, 3u, 5u}) {
    TaskSet ts(m);
    ts.add(fig1_task("a", 40.0));
    ts.add(fig1_nonblocking("b", 60.0));
    SimConfig cfg = global_config(120.0);
    cfg.collect_trace = true;
    EXPECT_EQ(simulate(ts, cfg), simulate(ts, cfg)) << "global m=" << m;

    TaskSetPartition partition;
    for (std::size_t t = 0; t < ts.size(); ++t)
      partition.per_task.push_back(NodeAssignment{std::vector<ThreadId>(
          ts.task(t).node_count(), static_cast<ThreadId>(t % m))});
    cfg.policy = SchedulingPolicy::kPartitioned;
    cfg.partition = partition;
    EXPECT_EQ(simulate(ts, cfg), simulate(ts, cfg)) << "partitioned m=" << m;
  }
}

TEST(SimTest, JitterIsDeterministicPerSeed) {
  TaskSet ts(2);
  ts.add(fig1_task("a", 25.0));
  SimConfig cfg = global_config(200.0);
  cfg.release_jitter_frac = 0.2;
  cfg.seed = 7;
  EXPECT_EQ(simulate(ts, cfg), simulate(ts, cfg));
  SimConfig other = cfg;
  other.seed = 8;
  EXPECT_NE(simulate(ts, cfg), simulate(ts, other));
}

TEST(OracleVerdictTest, ClassifiesOutcomes) {
  // Clean horizon.
  TaskSet easy(2);
  easy.add(fig1_task("easy", 100.0));
  OracleOptions options;
  const SimVerdict ok = oracle_verdict(easy, options);
  EXPECT_TRUE(ok.safe());
  EXPECT_EQ(ok.outcome, SimOutcome::kOk);
  EXPECT_DOUBLE_EQ(ok.horizon, 400.0);  // 4 windows x max period
  ASSERT_NE(ok.result, nullptr);
  EXPECT_GT(ok.result->per_task[0].jobs_completed, 0u);

  // Deadline miss: fig1 needs 22 time units sequentialized on m=2.
  TaskSet miss(2);
  miss.add(fig1_task("tight", 20.0));
  const SimVerdict missed = oracle_verdict(miss, options);
  EXPECT_EQ(missed.outcome, SimOutcome::kDeadlineMiss);
  EXPECT_EQ(missed.first_violation_task, 0u);
  EXPECT_NE(missed.description.find("tight"), std::string::npos);

  // Deadlock outranks the misses it causes.
  TaskSet dead(2);
  dead.add(two_region_task(100.0));
  const SimVerdict stalled = oracle_verdict(dead, options);
  EXPECT_EQ(stalled.outcome, SimOutcome::kDeadlock);
  EXPECT_FALSE(stalled.safe());
}

TEST(OracleVerdictTest, OutcomeNamesRoundTrip) {
  for (const SimOutcome outcome :
       {SimOutcome::kOk, SimOutcome::kDeadlineMiss, SimOutcome::kDeadlock})
    EXPECT_EQ(parse_sim_outcome(to_string(outcome)), outcome);
  EXPECT_THROW(parse_sim_outcome("livelock"), std::invalid_argument);
}

/// The fixed fig1-on-two-cores trace both golden renders below lock in.
SimResult golden_result(TaskSet& ts) {
  ts.add(fig1_task("fig1", 100.0));
  SimConfig cfg = global_config(30.0);
  cfg.collect_trace = true;
  return simulate(ts, cfg);
}

TEST(GanttTest, GoldenRender) {
  TaskSet ts(2);
  const SimResult r = golden_result(ts);
  GanttOptions options;
  options.width = 40;
  // The blocking fork suspends one worker, so the whole 22-unit job runs
  // on core 0 while core 1 idles — the render is locked byte-for-byte.
  EXPECT_EQ(render_ascii_gantt(ts, r.trace, options),
            "        t=0                                   22\n"
            "core  0 |AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA|\n"
            "core  1 |........................................|\n"
            "legend: A=fig1\n");
}

TEST(TraceJsonTest, GoldenRender) {
  TaskSet ts(2);
  const SimResult r = golden_result(ts);
  std::ostringstream os;
  write_chrome_trace(os, ts, r);
  EXPECT_EQ(
      os.str(),
      R"({"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"core 0"}},)"
      R"({"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"core 1"}},)"
      R"({"name":"fig1/v0","cat":"NB","ph":"X","pid":1,"tid":0,"ts":0,"dur":1,"args":{"task":"fig1","node":0,"type":"NB"}},)"
      R"({"name":"fig1/v1","cat":"BF","ph":"X","pid":1,"tid":0,"ts":1,"dur":2,"args":{"task":"fig1","node":1,"type":"BF"}},)"
      R"({"name":"fig1/v3","cat":"BC","ph":"X","pid":1,"tid":0,"ts":3,"dur":4,"args":{"task":"fig1","node":3,"type":"BC"}},)"
      R"({"name":"fig1/v4","cat":"BC","ph":"X","pid":1,"tid":0,"ts":7,"dur":5,"args":{"task":"fig1","node":4,"type":"BC"}},)"
      R"({"name":"fig1/v5","cat":"BC","ph":"X","pid":1,"tid":0,"ts":12,"dur":6,"args":{"task":"fig1","node":5,"type":"BC"}},)"
      R"({"name":"fig1/v2","cat":"BJ","ph":"X","pid":1,"tid":0,"ts":18,"dur":3,"args":{"task":"fig1","node":2,"type":"BJ"}},)"
      R"({"name":"fig1/v6","cat":"NB","ph":"X","pid":1,"tid":0,"ts":21,"dur":1,"args":{"task":"fig1","node":6,"type":"NB"}}],)"
      R"("displayTimeUnit":"ms"})");
}

TEST(SimTest, BacklogPreservesReleaseTimes) {
  // One task, C=7, T=5: every job overruns; the backlog grows and response
  // times accumulate: job k completes at 7(k+1), released at 5k.
  TaskSet ts(1);
  DagTaskBuilder b("t");
  b.add_node(7.0);
  b.period(5.0);
  ts.add(b.build());
  const SimResult r = simulate(ts, global_config(20.0));
  ASSERT_GE(r.jobs.size(), 2u);
  EXPECT_NEAR(r.jobs[0].response, 7.0, 1e-9);
  EXPECT_NEAR(r.jobs[1].response, 9.0, 1e-9);  // released 5, done 14
  EXPECT_TRUE(r.jobs[1].deadline_miss);
}

}  // namespace
}  // namespace rtpool::sim
