// Unit tests for the streaming JSON writer (util/json.h).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/json.h"

namespace rtpool::util {
namespace {

std::string render(const std::function<void(JsonWriter&)>& fn) {
  std::ostringstream os;
  JsonWriter json(os);
  fn(json);
  return os.str();
}

TEST(JsonWriterTest, EmptyObjectAndArray) {
  EXPECT_EQ(render([](JsonWriter& j) { j.begin_object().end_object(); }), "{}");
  EXPECT_EQ(render([](JsonWriter& j) { j.begin_array().end_array(); }), "[]");
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  const std::string out = render([](JsonWriter& j) {
    j.begin_object()
        .kv("s", "hi")
        .kv("i", std::int64_t{-3})
        .kv("u", std::uint64_t{7})
        .kv("d", 2.5)
        .kv("b", true)
        .key("n")
        .null()
        .end_object();
  });
  EXPECT_EQ(out, R"({"s":"hi","i":-3,"u":7,"d":2.5,"b":true,"n":null})");
}

TEST(JsonWriterTest, NestedContainers) {
  const std::string out = render([](JsonWriter& j) {
    j.begin_object().key("a").begin_array();
    j.value(std::int64_t{1});
    j.begin_object().kv("x", std::int64_t{2}).end_object();
    j.begin_array().end_array();
    j.end_array().end_object();
  });
  EXPECT_EQ(out, R"({"a":[1,{"x":2},[]]})");
}

TEST(JsonWriterTest, StringEscaping) {
  const std::string out = render([](JsonWriter& j) {
    j.value(std::string("quote\" slash\\ nl\n tab\t ctl\x01"));
  });
  EXPECT_EQ(out, "\"quote\\\" slash\\\\ nl\\n tab\\t ctl\\u0001\"");
}

TEST(JsonWriterTest, NonFiniteNumbersAsStrings) {
  EXPECT_EQ(render([](JsonWriter& j) { j.value(INFINITY); }), "\"inf\"");
  EXPECT_EQ(render([](JsonWriter& j) { j.value(-INFINITY); }), "\"-inf\"");
  EXPECT_EQ(render([](JsonWriter& j) { j.value(NAN); }), "\"nan\"");
}

TEST(JsonWriterTest, DoubleRoundTripPrecision) {
  const double v = 0.1 + 0.2;
  std::ostringstream os;
  JsonWriter json(os);
  json.value(v);
  EXPECT_DOUBLE_EQ(std::stod(os.str()), v);
}

TEST(JsonWriterTest, CompleteTracking) {
  std::ostringstream os;
  JsonWriter json(os);
  EXPECT_FALSE(json.complete());
  json.begin_object();
  EXPECT_FALSE(json.complete());
  json.end_object();
  EXPECT_TRUE(json.complete());
}

TEST(JsonWriterTest, UsageErrors) {
  {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_object();
    EXPECT_THROW(json.value(std::int64_t{1}), std::logic_error);  // no key
  }
  {
    std::ostringstream os;
    JsonWriter json(os);
    EXPECT_THROW(json.key("k"), std::logic_error);  // key outside object
  }
  {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_array();
    EXPECT_THROW(json.end_object(), std::logic_error);  // mismatch
  }
  {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_object().key("k");
    EXPECT_THROW(json.key("k2"), std::logic_error);  // key after key
    json.value(std::int64_t{1});
    json.end_object();
    EXPECT_THROW(json.value(std::int64_t{2}), std::logic_error);  // 2nd root
  }
  {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_object().key("dangling");
    EXPECT_THROW(json.end_object(), std::logic_error);
  }
}

}  // namespace
}  // namespace rtpool::util
