// Unit tests for the streaming JSON writer (util/json.h).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/json.h"

namespace rtpool::util {
namespace {

std::string render(const std::function<void(JsonWriter&)>& fn) {
  std::ostringstream os;
  JsonWriter json(os);
  fn(json);
  return os.str();
}

TEST(JsonWriterTest, EmptyObjectAndArray) {
  EXPECT_EQ(render([](JsonWriter& j) { j.begin_object().end_object(); }), "{}");
  EXPECT_EQ(render([](JsonWriter& j) { j.begin_array().end_array(); }), "[]");
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  const std::string out = render([](JsonWriter& j) {
    j.begin_object()
        .kv("s", "hi")
        .kv("i", std::int64_t{-3})
        .kv("u", std::uint64_t{7})
        .kv("d", 2.5)
        .kv("b", true)
        .key("n")
        .null()
        .end_object();
  });
  EXPECT_EQ(out, R"({"s":"hi","i":-3,"u":7,"d":2.5,"b":true,"n":null})");
}

TEST(JsonWriterTest, NestedContainers) {
  const std::string out = render([](JsonWriter& j) {
    j.begin_object().key("a").begin_array();
    j.value(std::int64_t{1});
    j.begin_object().kv("x", std::int64_t{2}).end_object();
    j.begin_array().end_array();
    j.end_array().end_object();
  });
  EXPECT_EQ(out, R"({"a":[1,{"x":2},[]]})");
}

TEST(JsonWriterTest, StringEscaping) {
  const std::string out = render([](JsonWriter& j) {
    j.value(std::string("quote\" slash\\ nl\n tab\t ctl\x01"));
  });
  EXPECT_EQ(out, "\"quote\\\" slash\\\\ nl\\n tab\\t ctl\\u0001\"");
}

TEST(JsonWriterTest, NonFiniteNumbersAsStrings) {
  EXPECT_EQ(render([](JsonWriter& j) { j.value(INFINITY); }), "\"inf\"");
  EXPECT_EQ(render([](JsonWriter& j) { j.value(-INFINITY); }), "\"-inf\"");
  EXPECT_EQ(render([](JsonWriter& j) { j.value(NAN); }), "\"nan\"");
}

TEST(JsonWriterTest, DoubleRoundTripPrecision) {
  const double v = 0.1 + 0.2;
  std::ostringstream os;
  JsonWriter json(os);
  json.value(v);
  EXPECT_DOUBLE_EQ(std::stod(os.str()), v);
}

TEST(JsonWriterTest, CompleteTracking) {
  std::ostringstream os;
  JsonWriter json(os);
  EXPECT_FALSE(json.complete());
  json.begin_object();
  EXPECT_FALSE(json.complete());
  json.end_object();
  EXPECT_TRUE(json.complete());
}

TEST(JsonWriterTest, UsageErrors) {
  {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_object();
    EXPECT_THROW(json.value(std::int64_t{1}), std::logic_error);  // no key
  }
  {
    std::ostringstream os;
    JsonWriter json(os);
    EXPECT_THROW(json.key("k"), std::logic_error);  // key outside object
  }
  {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_array();
    EXPECT_THROW(json.end_object(), std::logic_error);  // mismatch
  }
  {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_object().key("k");
    EXPECT_THROW(json.key("k2"), std::logic_error);  // key after key
    json.value(std::int64_t{1});
    json.end_object();
    EXPECT_THROW(json.value(std::int64_t{2}), std::logic_error);  // 2nd root
  }
  {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_object().key("dangling");
    EXPECT_THROW(json.end_object(), std::logic_error);
  }
}

TEST(JsonParserTest, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParserTest, NestedContainers) {
  const JsonValue v = parse_json(R"({"a":[1,{"x":2},[]],"b":null})");
  const auto& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a[1].at("x").as_number(), 2.0);
  EXPECT_TRUE(a[2].as_array().empty());
  EXPECT_TRUE(v.at("b").is_null());
  EXPECT_TRUE(v.contains("b"));
  EXPECT_FALSE(v.contains("c"));
}

TEST(JsonParserTest, StringEscapes) {
  EXPECT_EQ(parse_json(R"("quote\" slash\\ nl\n tab\t uA")").as_string(),
            "quote\" slash\\ nl\n tab\t uA");
}

TEST(JsonParserTest, RoundTripsWriterOutput) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object()
      .kv("s", std::string("ctl\x01 nl\n"))
      .kv("d", 0.1 + 0.2)
      .kv("i", std::int64_t{-42})
      .key("arr")
      .begin_array()
      .value(true)
      .null()
      .end_array()
      .end_object();
  const JsonValue v = parse_json(os.str());
  EXPECT_EQ(v.at("s").as_string(), "ctl\x01 nl\n");
  EXPECT_DOUBLE_EQ(v.at("d").as_number(), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(v.at("i").as_number(), -42.0);
  EXPECT_EQ(v.at("arr").as_array()[0].as_bool(), true);
  EXPECT_TRUE(v.at("arr").as_array()[1].is_null());
}

TEST(JsonParserTest, Errors) {
  EXPECT_THROW(parse_json(""), JsonParseError);
  EXPECT_THROW(parse_json("{"), JsonParseError);
  EXPECT_THROW(parse_json("[1,]"), JsonParseError);
  EXPECT_THROW(parse_json("{\"a\":1,}"), JsonParseError);
  EXPECT_THROW(parse_json("tru"), JsonParseError);
  EXPECT_THROW(parse_json("1 2"), JsonParseError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonParseError);
  EXPECT_THROW(parse_json("\"bad\\q\""), JsonParseError);
  EXPECT_THROW(parse_json("--1"), JsonParseError);
}

TEST(JsonParserTest, KindMismatchThrows) {
  const JsonValue v = parse_json("[1]");
  EXPECT_THROW(v.as_object(), std::logic_error);
  EXPECT_THROW(v.at("k"), std::logic_error);
  EXPECT_THROW(parse_json("{}").at("k"), std::out_of_range);
}

namespace {
std::string write_string_value(const std::string& s) {
  std::ostringstream os;
  JsonWriter json(os);
  json.value(s);
  return os.str();
}
}  // namespace

TEST(JsonWriterTest, PassesWellFormedUtf8Through) {
  // 2-byte (é), 3-byte (€), 4-byte (𝄞) sequences survive verbatim.
  const std::string s = "caf\xC3\xA9 \xE2\x82\xAC \xF0\x9D\x84\x9E";
  EXPECT_EQ(write_string_value(s), "\"" + s + "\"");
  EXPECT_EQ(parse_json(write_string_value(s)).as_string(), s);
}

TEST(JsonWriterTest, ReplacesIllFormedUtf8) {
  const std::string fffd = "\xEF\xBF\xBD";
  // Stray continuation byte.
  EXPECT_EQ(write_string_value("a\x80z"), "\"a" + fffd + "z\"");
  // Truncated 2-byte sequence at end of string.
  EXPECT_EQ(write_string_value("a\xC3"), "\"a" + fffd + "\"");
  // Overlong encoding of '/' (0xC0 0xAF) — both bytes replaced.
  EXPECT_EQ(write_string_value("\xC0\xAF"), "\"" + fffd + fffd + "\"");
  // CESU-8-style encoded surrogate half (0xED 0xA0 0x80 = U+D800).
  EXPECT_EQ(write_string_value("\xED\xA0\x80"), "\"" + fffd + fffd + fffd + "\"");
  // 0xF8/0xFF can never start a sequence.
  EXPECT_EQ(write_string_value("\xFF"), "\"" + fffd + "\"");
  // Lead byte followed by a non-continuation byte: the follower is kept.
  EXPECT_EQ(write_string_value("\xC3(z"), "\"" + fffd + "(z\"");
  // Everything above still parses as valid JSON.
  EXPECT_EQ(parse_json(write_string_value("a\x80z")).as_string(), "a" + fffd + "z");
}

TEST(JsonParserTest, CombinesSurrogatePairs) {
  // U+1D11E (musical G clef) as the \uD834\uDD1E pair.
  EXPECT_EQ(parse_json("\"\\uD834\\uDD1E\"").as_string(), "\xF0\x9D\x84\x9E");
  // BMP escapes are unaffected (U+20AC, euro sign).
  EXPECT_EQ(parse_json("\"\\u20AC\"").as_string(), "\xE2\x82\xAC");
}

TEST(JsonParserTest, LoneSurrogatesDecodeToReplacement) {
  const std::string fffd = "\xEF\xBF\xBD";
  EXPECT_EQ(parse_json(R"("\uD800")").as_string(), fffd);          // lone high
  EXPECT_EQ(parse_json(R"("\uDC00")").as_string(), fffd);          // lone low
  // High surrogate followed by a non-surrogate escape: U+FFFD, then the
  // second escape decodes on its own.
  EXPECT_EQ(parse_json(R"("\uD800A")").as_string(), fffd + "A");
  // High surrogate followed by plain text.
  EXPECT_EQ(parse_json(R"("\uD800z")").as_string(), fffd + "z");
}

namespace {

/// A golden admission-service submission: a .taskset document (newlines,
/// '=' signs, digits — everything the wire format embeds in the "taskset"
/// string member) wrapped in the request envelope via JsonWriter, so the
/// escaping is exactly what the daemon's clients produce.
const char kGoldenTaskset[] =
    "taskset cores=4\n"
    "task name=tau0 period=100.5 deadline=100.5 priority=0 nodes=3\n"
    "node 0 wcet=5 type=fork\n"
    "node 1 wcet=2.25 type=normal\n"
    "node 2 wcet=1 type=join\n"
    "edge 0 1\n"
    "edge 1 2\n"
    "endtask\n";

std::string golden_submission() {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object()
      .kv("id", "req-7")
      .kv("taskset", std::string(kGoldenTaskset))
      .kv("analyzer", "global-limited")
      .kv("wcet_scale", 1.5)
      .end_object();
  return os.str();
}

}  // namespace

TEST(JsonStreamParserTest, WholeDocumentInOneFeed) {
  JsonStreamParser parser;
  EXPECT_TRUE(parser.idle());
  parser.feed(golden_submission());
  const std::optional<JsonValue> doc = parser.next();
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("id").as_string(), "req-7");
  EXPECT_EQ(doc->at("taskset").as_string(), kGoldenTaskset);
  EXPECT_TRUE(parser.idle());
  EXPECT_EQ(parser.pending_bytes(), 0u);
  EXPECT_FALSE(parser.next().has_value());
}

TEST(JsonStreamParserTest, SplitAtEveryByteOffset) {
  // The regression this guards: a TCP read can cut the submission at ANY
  // byte — mid-escape, mid-number, mid-key — and the parser must neither
  // yield a document early nor corrupt the one it finally yields.
  const std::string doc = golden_submission();
  for (std::size_t split = 0; split <= doc.size(); ++split) {
    JsonStreamParser parser;
    parser.feed(doc.data(), split);
    if (split < doc.size()) {
      EXPECT_FALSE(parser.next().has_value()) << "early doc at split " << split;
      EXPECT_EQ(parser.pending_bytes(), split) << "at split " << split;
      EXPECT_EQ(parser.idle(), split == 0) << "at split " << split;
    }
    parser.feed(doc.data() + split, doc.size() - split);
    const std::optional<JsonValue> got = parser.next();
    ASSERT_TRUE(got.has_value()) << "no doc after completing split " << split;
    EXPECT_EQ(got->at("taskset").as_string(), kGoldenTaskset)
        << "corrupt payload at split " << split;
    EXPECT_DOUBLE_EQ(got->at("wcet_scale").as_number(), 1.5);
    EXPECT_TRUE(parser.idle());
  }
}

TEST(JsonStreamParserTest, OneByteAtATime) {
  const std::string doc = golden_submission();
  JsonStreamParser parser;
  for (std::size_t i = 0; i + 1 < doc.size(); ++i) {
    parser.feed(doc.data() + i, 1);
    EXPECT_FALSE(parser.next().has_value()) << "early doc after byte " << i;
  }
  parser.feed(doc.data() + doc.size() - 1, 1);
  const std::optional<JsonValue> got = parser.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->at("id").as_string(), "req-7");
}

TEST(JsonStreamParserTest, BackToBackDocumentsInOneBuffer) {
  JsonStreamParser parser;
  parser.feed(golden_submission() + " \n" + R"({"cmd":"stats"})" + "\t" +
              golden_submission());
  const std::optional<JsonValue> first = parser.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->at("id").as_string(), "req-7");
  const std::optional<JsonValue> second = parser.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->at("cmd").as_string(), "stats");
  const std::optional<JsonValue> third = parser.next();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->at("taskset").as_string(), kGoldenTaskset);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.idle());
}

TEST(JsonStreamParserTest, RecoversAfterMalformedDocument) {
  JsonStreamParser parser;
  // Structurally complete (braces balance) but invalid: trailing comma.
  parser.feed(R"({"a":1,})");
  EXPECT_THROW(parser.next(), JsonParseError);
  // The bad document is consumed; the connection keeps working.
  parser.feed(golden_submission());
  const std::optional<JsonValue> got = parser.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->at("id").as_string(), "req-7");
}

TEST(JsonStreamParserTest, RejectsInvalidDocumentStart) {
  JsonStreamParser parser;
  parser.feed("@garbage");
  EXPECT_THROW(parser.next(), JsonParseError);
}

TEST(JsonStreamParserTest, ScalarRootNeedsDelimiterOrFinish) {
  {
    // "42" could be the prefix of "421": no document until a delimiter.
    JsonStreamParser parser;
    parser.feed("42");
    EXPECT_FALSE(parser.next().has_value());
    parser.feed(" ");
    const std::optional<JsonValue> got = parser.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(got->as_number(), 42.0);
  }
  {
    // finish() declares EOF, which completes the pending scalar.
    JsonStreamParser parser;
    parser.feed("42");
    parser.finish();
    const std::optional<JsonValue> got = parser.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(got->as_number(), 42.0);
  }
}

TEST(JsonStreamParserTest, FinishOnHalfOpenRootThrows) {
  JsonStreamParser parser;
  parser.feed(R"({"taskset":"trunc)");
  EXPECT_FALSE(parser.next().has_value());
  parser.finish();
  EXPECT_THROW(parser.next(), JsonParseError);
}

TEST(JsonStreamParserTest, RecoversAfterInvalidDocumentStart) {
  JsonStreamParser parser;
  parser.feed("% {\"a\":1}");
  // The bad byte is reported once, then the stream resumes at the byte
  // after it — the following document must come out intact.
  EXPECT_THROW(parser.next(), JsonParseError);
  const std::optional<JsonValue> got = parser.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->at("a").as_number(), 1.0);
  EXPECT_TRUE(parser.idle());
}

TEST(JsonStreamParserTest, InvalidStartAfterLongWhitespaceKeepsStreamAlive) {
  // Regression: the invalid-document-start error path set consumed_ past
  // scan_ and compacted, so once the consumed prefix was large enough to
  // trigger compaction (> 4096 bytes), scan_ wrapped to SIZE_MAX and every
  // later document on the stream was silently discarded.
  JsonStreamParser parser;
  parser.feed(std::string(5000, ' ') + "%");
  EXPECT_THROW(parser.next(), JsonParseError);
  parser.feed(R"({"alive":true})");
  const std::optional<JsonValue> got = parser.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->at("alive").as_bool());
  // And the stream keeps working beyond the first post-error document.
  parser.feed(R"( {"second":2})");
  const std::optional<JsonValue> second = parser.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->at("second").as_number(), 2.0);
}

TEST(JsonStreamParserTest, PendingBytesAndIdleTrackPartialInput) {
  JsonStreamParser parser;
  EXPECT_TRUE(parser.idle());
  EXPECT_EQ(parser.pending_bytes(), 0u);
  parser.feed("  \n");  // inter-document whitespace keeps the parser idle
  EXPECT_TRUE(parser.idle());
  parser.feed("{\"a\":");
  EXPECT_FALSE(parser.idle());
  EXPECT_GT(parser.pending_bytes(), 0u);
  parser.feed("1}");
  ASSERT_TRUE(parser.next().has_value());
  EXPECT_TRUE(parser.idle());
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

}  // namespace
}  // namespace rtpool::util
