// Unit tests for src/model: node types, DagTask invariants and blocking
// regions, TaskSet, builder (incl. source/sink normalization).
#include <gtest/gtest.h>

#include "model/builder.h"
#include "model/dag_task.h"
#include "model/node.h"
#include "model/task_set.h"

namespace rtpool::model {
namespace {

// Figure 1(a): v0=NB source is implicit here; classic fork-join
//   f(BF) -> c1,c2,c3(BC) -> j(BJ)
DagTask fig1_task(util::Time period = 100.0) {
  DagTaskBuilder b("fig1");
  const NodeId pre = b.add_node(1.0, NodeType::NB);
  const auto fj = b.add_blocking_fork_join(2.0, 3.0, {4.0, 5.0, 6.0});
  const NodeId post = b.add_node(1.0, NodeType::NB);
  b.add_edge(pre, fj.fork);
  b.add_edge(fj.join, post);
  b.period(period);
  return b.build();
}

TEST(NodeTypeTest, RoundTrip) {
  for (NodeType t : {NodeType::NB, NodeType::BF, NodeType::BJ, NodeType::BC})
    EXPECT_EQ(node_type_from_string(to_string(t)), t);
  EXPECT_THROW(node_type_from_string("XX"), std::invalid_argument);
}

TEST(DagTaskTest, BasicProperties) {
  const DagTask t = fig1_task();
  EXPECT_EQ(t.node_count(), 7u);
  EXPECT_DOUBLE_EQ(t.volume(), 22.0);
  // Critical path: pre(1) f(2) c3(6) j(3) post(1) = 13
  EXPECT_DOUBLE_EQ(t.critical_path_length(), 13.0);
  EXPECT_DOUBLE_EQ(t.period(), 100.0);
  EXPECT_DOUBLE_EQ(t.deadline(), 100.0);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.22);
  EXPECT_EQ(t.type(t.source()), NodeType::NB);
  EXPECT_EQ(t.type(t.sink()), NodeType::NB);
}

TEST(DagTaskTest, BlockingRegionStructure) {
  const DagTask t = fig1_task();
  ASSERT_EQ(t.blocking_regions().size(), 1u);
  const BlockingRegion& r = t.blocking_regions()[0];
  EXPECT_EQ(t.type(r.fork), NodeType::BF);
  EXPECT_EQ(t.type(r.join), NodeType::BJ);
  EXPECT_EQ(r.members.count(), 3u);
  EXPECT_EQ(t.join_of(r.fork), r.join);
  EXPECT_EQ(t.fork_of(r.join), r.fork);
  r.members.for_each([&](std::size_t v) {
    EXPECT_EQ(t.type(static_cast<NodeId>(v)), NodeType::BC);
    EXPECT_EQ(t.blocking_fork_of(static_cast<NodeId>(v)), r.fork);
    EXPECT_EQ(t.region_of(static_cast<NodeId>(v)), t.region_of(r.fork));
  });
  EXPECT_FALSE(t.region_of(t.source()).has_value());
  EXPECT_EQ(t.blocking_fork_count(), 1u);
}

TEST(DagTaskTest, TypedAccessorsThrowOnWrongType) {
  const DagTask t = fig1_task();
  EXPECT_THROW(t.join_of(t.source()), ModelError);
  EXPECT_THROW(t.fork_of(t.source()), ModelError);
  EXPECT_THROW(t.blocking_fork_of(t.source()), ModelError);
}

TEST(DagTaskTest, NodesOfType) {
  const DagTask t = fig1_task();
  EXPECT_EQ(t.nodes_of_type(NodeType::BF).size(), 1u);
  EXPECT_EQ(t.nodes_of_type(NodeType::BJ).size(), 1u);
  EXPECT_EQ(t.nodes_of_type(NodeType::BC).size(), 3u);
  EXPECT_EQ(t.nodes_of_type(NodeType::NB).size(), 2u);
}

TEST(DagTaskTest, RejectsCycle) {
  graph::Dag d(2);
  d.add_edge(0, 1);
  d.add_edge(1, 0);
  std::vector<Node> nodes{{1.0, NodeType::NB}, {1.0, NodeType::NB}};
  EXPECT_THROW(DagTask("bad", std::move(d), std::move(nodes), 10, 10), ModelError);
}

TEST(DagTaskTest, RejectsMultipleSources) {
  graph::Dag d(3);
  d.add_edge(0, 2);
  d.add_edge(1, 2);
  std::vector<Node> nodes(3, Node{1.0, NodeType::NB});
  EXPECT_THROW(DagTask("bad", std::move(d), std::move(nodes), 10, 10), ModelError);
}

TEST(DagTaskTest, RejectsDisconnected) {
  graph::Dag d(3);
  d.add_edge(0, 1);  // 2 isolated: also means 2 sources and 2 sinks
  std::vector<Node> nodes(3, Node{1.0, NodeType::NB});
  EXPECT_THROW(DagTask("bad", std::move(d), std::move(nodes), 10, 10), ModelError);
}

TEST(DagTaskTest, RejectsBadTiming) {
  graph::Dag d(1);
  std::vector<Node> nodes{{1.0, NodeType::NB}};
  EXPECT_THROW(DagTask("bad", d, nodes, 0.0, 0.0), ModelError);
  EXPECT_THROW(DagTask("bad", d, nodes, 10.0, 20.0), ModelError);  // D > T
  EXPECT_THROW(DagTask("bad", d, nodes, 10.0, 0.0), ModelError);
}

TEST(DagTaskTest, RejectsNegativeOrAllZeroWcet) {
  graph::Dag d(2);
  d.add_edge(0, 1);
  std::vector<Node> neg{{-1.0, NodeType::NB}, {1.0, NodeType::NB}};
  EXPECT_THROW(DagTask("bad", d, neg, 10, 10), ModelError);
  std::vector<Node> zero{{0.0, NodeType::NB}, {0.0, NodeType::NB}};
  EXPECT_THROW(DagTask("bad", d, zero, 10, 10), ModelError);
}

TEST(DagTaskTest, RejectsUnpairedFork) {
  // BF whose flood never reaches a BJ.
  graph::Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  std::vector<Node> nodes{{1, NodeType::BF}, {1, NodeType::BC}, {1, NodeType::NB}};
  EXPECT_THROW(DagTask("bad", std::move(d), std::move(nodes), 10, 10), ModelError);
}

TEST(DagTaskTest, RejectsOrphanJoinAndChild) {
  {
    graph::Dag d(2);
    d.add_edge(0, 1);
    std::vector<Node> nodes{{1, NodeType::NB}, {1, NodeType::BJ}};
    EXPECT_THROW(DagTask("bad", std::move(d), std::move(nodes), 10, 10), ModelError);
  }
  {
    graph::Dag d(2);
    d.add_edge(0, 1);
    std::vector<Node> nodes{{1, NodeType::NB}, {1, NodeType::BC}};
    EXPECT_THROW(DagTask("bad", std::move(d), std::move(nodes), 10, 10), ModelError);
  }
}

TEST(DagTaskTest, RejectsNestedBlockingRegions) {
  // BF -> BF ... not allowed (inner node of a region typed BF).
  DagTaskBuilder b("nested");
  const NodeId f1 = b.add_node(1, NodeType::BF);
  const NodeId f2 = b.add_node(1, NodeType::BF);
  const NodeId c = b.add_node(1, NodeType::BC);
  const NodeId j2 = b.add_node(1, NodeType::BJ);
  const NodeId j1 = b.add_node(1, NodeType::BJ);
  b.add_edge(f1, f2);
  b.add_edge(f2, c);
  b.add_edge(c, j2);
  b.add_edge(j2, j1);
  b.period(100);
  EXPECT_THROW(b.build(), ModelError);
}

TEST(DagTaskTest, RejectsNbInsideRegion) {
  graph::Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  std::vector<Node> nodes{{1, NodeType::BF}, {1, NodeType::NB}, {1, NodeType::BJ}};
  EXPECT_THROW(DagTask("bad", std::move(d), std::move(nodes), 10, 10), ModelError);
}

TEST(DagTaskTest, RejectsEdgeIntoRegionInterior) {
  // Restriction (i): an NB node outside feeds a BC member directly.
  DagTaskBuilder b("leak");
  const NodeId pre = b.add_node(1, NodeType::NB);
  const auto fj = b.add_blocking_fork_join(1, 1, {1, 1});
  const NodeId post = b.add_node(1, NodeType::NB);
  b.add_edge(pre, fj.fork);
  b.add_edge(fj.join, post);
  b.add_edge(pre, fj.children[0]);  // illegal crossing edge
  b.period(100);
  EXPECT_THROW(b.build(), ModelError);
}

TEST(DagTaskTest, RejectsEdgeOutOfRegionInterior) {
  // Restriction (i)/(ii): member feeds the outside directly.
  DagTaskBuilder b("leak2");
  const NodeId pre = b.add_node(1, NodeType::NB);
  const auto fj = b.add_blocking_fork_join(1, 1, {1, 1});
  const NodeId post = b.add_node(1, NodeType::NB);
  b.add_edge(pre, fj.fork);
  b.add_edge(fj.join, post);
  b.add_edge(fj.children[0], post);  // illegal crossing edge
  b.period(100);
  EXPECT_THROW(b.build(), ModelError);
}

TEST(DagTaskTest, AllowsDirectForkJoinEdge) {
  DagTaskBuilder b("direct");
  const auto fj = b.add_blocking_fork_join(1, 1, {2});
  b.add_edge(fj.fork, fj.join);  // extra direct edge: still inside the region
  b.period(100);
  const DagTask t = b.build();
  EXPECT_EQ(t.blocking_regions().size(), 1u);
}

TEST(DagTaskTest, WithPriority) {
  const DagTask t = fig1_task();
  const DagTask t2 = t.with_priority(5);
  EXPECT_EQ(t2.priority(), 5);
  EXPECT_EQ(t.priority(), 0);
  EXPECT_EQ(t2.node_count(), t.node_count());
}

TEST(BuilderTest, NormalizesMultipleSourcesAndSinks) {
  DagTaskBuilder b("multi");
  const NodeId a = b.add_node(1);
  const NodeId c = b.add_node(1);
  const NodeId d = b.add_node(1);
  const NodeId e = b.add_node(1);
  b.add_edge(a, d);
  b.add_edge(c, e);
  b.period(10);
  const DagTask t = b.build();
  // 4 original + dummy source + dummy sink
  EXPECT_EQ(t.node_count(), 6u);
  EXPECT_DOUBLE_EQ(t.wcet(t.source()), 0.0);
  EXPECT_DOUBLE_EQ(t.wcet(t.sink()), 0.0);
}

TEST(BuilderTest, NormalizationDisabled) {
  DagTaskBuilder b("multi");
  b.add_node(1);
  b.add_node(1);
  b.period(10);
  b.normalize_source_sink(false);
  EXPECT_THROW(b.build(), ModelError);
}

TEST(BuilderTest, DeadlineDefaultsToPeriod) {
  DagTaskBuilder b("t");
  b.add_node(1);
  b.period(42);
  EXPECT_DOUBLE_EQ(b.build().deadline(), 42.0);
}

TEST(BuilderTest, ForkJoinHelpers) {
  const DagTask blocking = make_fork_join_task("b", 3, 2.0, 100.0, true);
  EXPECT_EQ(blocking.blocking_regions().size(), 1u);
  EXPECT_EQ(blocking.node_count(), 5u);

  const DagTask plain = make_fork_join_task("p", 3, 2.0, 100.0, false);
  EXPECT_TRUE(plain.blocking_regions().empty());
  EXPECT_EQ(plain.nodes_of_type(NodeType::NB).size(), 5u);
}

TEST(BuilderTest, EmptyForkJoinThrows) {
  DagTaskBuilder b("t");
  EXPECT_THROW(b.add_blocking_fork_join(1, 1, {}), ModelError);
  EXPECT_THROW(b.add_fork_join(1, 1, {}), ModelError);
}

TEST(TaskSetTest, BasicAccounting) {
  TaskSet ts(4);
  ts.add(fig1_task(100.0).with_priority(1));
  ts.add(make_fork_join_task("other", 2, 5.0, 50.0, false).with_priority(0));
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.core_count(), 4u);
  // "other" has 4 nodes (fork, join, 2 children) of 5.0 each: U = 20/50.
  EXPECT_NEAR(ts.total_utilization(), 0.22 + 20.0 / 50.0, 1e-12);
  EXPECT_TRUE(ts.priorities_distinct());
  EXPECT_EQ(ts.priority_order(), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(ts.higher_priority_of(0), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(ts.higher_priority_of(1).empty());
}

TEST(TaskSetTest, RejectsZeroCoresAndDuplicateNames) {
  EXPECT_THROW(TaskSet(0), ModelError);
  TaskSet ts(2);
  ts.add(fig1_task());
  EXPECT_THROW(ts.add(fig1_task()), ModelError);
}

TEST(TaskSetTest, EqualPrioritiesTieBreakByIndex) {
  TaskSet ts(2);
  ts.add(fig1_task().with_priority(3));
  ts.add(make_fork_join_task("o", 2, 1.0, 50.0, false).with_priority(3));
  EXPECT_FALSE(ts.priorities_distinct());
  EXPECT_EQ(ts.priority_order(), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(ts.higher_priority_of(1), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(ts.higher_priority_of(0).empty());
}

TEST(TaskSetTest, DeadlineMonotonic) {
  TaskSet ts(2);
  ts.add(make_fork_join_task("slow", 2, 10.0, 1000.0, false));
  ts.add(make_fork_join_task("fast", 2, 1.0, 10.0, false));
  ts.add(make_fork_join_task("mid", 2, 5.0, 100.0, false));
  const TaskSet dm = assign_deadline_monotonic(ts);
  EXPECT_EQ(dm.task(0).priority(), 2);  // slow = lowest priority
  EXPECT_EQ(dm.task(1).priority(), 0);  // fast = highest
  EXPECT_EQ(dm.task(2).priority(), 1);
  EXPECT_TRUE(dm.priorities_distinct());
}

}  // namespace
}  // namespace rtpool::model
