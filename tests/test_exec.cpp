// Unit tests for the real thread-pool runtime (src/exec): pool mechanics,
// blocking/non-blocking graph execution, and the live deadlock of Fig. 1(c).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "analysis/concurrency.h"
#include "exec/graph_executor.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "gen/taskset_generator.h"
#include "model/builder.h"

namespace rtpool::exec {
namespace {

using model::DagTask;
using model::DagTaskBuilder;
using model::NodeId;

DagTask fig1_task() {
  DagTaskBuilder b("fig1");
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(1.0, 1.0, {1.0, 1.0, 1.0});
  const NodeId post = b.add_node(1.0);
  b.add_edge(pre, fj.fork);
  b.add_edge(fj.join, post);
  b.period(100.0);
  return b.build();
}

DagTask two_region_task() {
  DagTaskBuilder b("replicas");
  const NodeId src = b.add_node(1.0);
  const auto r1 = b.add_blocking_fork_join(1.0, 1.0, {1.0, 1.0});
  const auto r2 = b.add_blocking_fork_join(1.0, 1.0, {1.0, 1.0});
  const NodeId snk = b.add_node(1.0);
  b.add_edge(src, r1.fork);
  b.add_edge(src, r2.fork);
  b.add_edge(r1.join, snk);
  b.add_edge(r2.join, snk);
  b.period(100.0);
  return b.build();
}

TEST(ThreadPoolTest, ExecutesSubmittedClosures) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i)
    pool.submit([&] {
      if (count.fetch_add(1) + 1 == 100) {
        std::lock_guard lock(mu);
        cv.notify_all();
      }
    });
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return count.load() == 100; }));
  EXPECT_GE(pool.executed(), 100u);
}

TEST(ThreadPoolTest, CurrentWorkerVisibleInsideClosures) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::mutex mu;
  std::set<std::size_t> seen;
  for (int i = 0; i < 50; ++i)
    pool.submit([&] {
      const auto w = ThreadPool::current_worker();
      ASSERT_TRUE(w.has_value());
      {
        std::lock_guard lock(mu);
        seen.insert(*w);
      }
      done.fetch_add(1);
    });
  while (done.load() < 50) std::this_thread::yield();
  EXPECT_FALSE(ThreadPool::current_worker().has_value());  // main thread
  for (std::size_t w : seen) EXPECT_LT(w, 3u);
}

TEST(ThreadPoolTest, PerWorkerQueuesRouteToTarget) {
  ThreadPool pool(3, ThreadPool::QueueMode::kPerWorker);
  std::atomic<int> done{0};
  std::atomic<bool> routed{true};
  for (int i = 0; i < 30; ++i) {
    const std::size_t target = i % 3;
    pool.submit_to(target, [&, target] {
      if (ThreadPool::current_worker() != target) routed = false;
      done.fetch_add(1);
    });
  }
  while (done.load() < 30) std::this_thread::yield();
  EXPECT_TRUE(routed.load());
}

TEST(ThreadPoolTest, SubmitToRequiresPerWorkerMode) {
  ThreadPool shared(2);
  EXPECT_THROW(shared.submit_to(0, [] {}), std::logic_error);
  ThreadPool per(2, ThreadPool::QueueMode::kPerWorker);
  EXPECT_THROW(per.submit_to(5, [] {}), std::out_of_range);
}

TEST(ThreadPoolTest, StealingDrainsForeignQueues) {
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker, /*steal=*/true);
  std::atomic<int> done{0};
  // Everything targeted at worker 0; worker 1 must steal some of it.
  std::atomic<bool> worker1_ran{false};
  for (int i = 0; i < 64; ++i)
    pool.submit_to(0, [&] {
      if (ThreadPool::current_worker() == 1u) worker1_ran = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  while (done.load() < 64) std::this_thread::yield();
  EXPECT_TRUE(worker1_ran.load());
}

TEST(ThreadPoolTest, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(GraphExecutorTest, BlockingCompletesWithEnoughWorkers) {
  ThreadPool pool(2);
  const DagTask task = fig1_task();
  GraphExecutor exec(pool, task);
  std::atomic<int> visited{0};
  const ExecReport report =
      exec.run_blocking(ExecOptions{}, [&](NodeId) { visited.fetch_add(1); });
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.nodes_executed, task.node_count());
  EXPECT_EQ(visited.load(), static_cast<int>(task.node_count()));
  // The fork was suspended at some point.
  EXPECT_GE(report.max_blocked_workers, 1u);
}

TEST(GraphExecutorTest, BlockingDeadlocksOnTwoRegionsTwoWorkers) {
  ThreadPool pool(2);
  const DagTask task = two_region_task();
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.watchdog = std::chrono::milliseconds(300);
  const ExecReport report = exec.run_blocking(options);
  EXPECT_FALSE(report.completed);  // Figure 1(c): a real deadlock, cancelled
  EXPECT_EQ(report.max_blocked_workers, 2u);
  EXPECT_LT(report.nodes_executed, task.node_count());
  // The pool must be usable again after cancellation.
  std::atomic<bool> ran{false};
  std::mutex mu;
  std::condition_variable cv;
  pool.submit([&] {
    // Notify under the lock: otherwise the waiter can wake, return and
    // destroy cv while notify_all is still running (TSan-visible race).
    std::lock_guard lock(mu);
    ran = true;
    cv.notify_all();
  });
  std::unique_lock lock(mu);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return ran.load(); }));
}

TEST(GraphExecutorTest, NonBlockingNeverDeadlocks) {
  ThreadPool pool(2);
  const DagTask task = two_region_task();
  GraphExecutor exec(pool, task);
  const ExecReport report = exec.run_non_blocking(ExecOptions{});
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.nodes_executed, task.node_count());
}

TEST(GraphExecutorTest, BlockingCompletesEvenOnOneWorkerForSingleRegion) {
  // One worker + one region deadlocks (the fork blocks the only worker).
  ThreadPool pool(1);
  const DagTask task = fig1_task();
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.watchdog = std::chrono::milliseconds(300);
  const ExecReport report = exec.run_blocking(options);
  EXPECT_FALSE(report.completed);

  // Non-blocking on one worker is fine.
  ThreadPool pool2(1);
  GraphExecutor exec2(pool2, task);
  EXPECT_TRUE(exec2.run_non_blocking(ExecOptions{}).completed);
}

TEST(GraphExecutorTest, RespectsTopologicalOrder) {
  ThreadPool pool(4);
  const DagTask task = fig1_task();
  GraphExecutor exec(pool, task);
  std::mutex mu;
  std::vector<NodeId> order;
  const ExecReport report = exec.run_blocking(ExecOptions{}, [&](NodeId v) {
    std::lock_guard lock(mu);
    order.push_back(v);
  });
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(order.size(), task.node_count());
  std::vector<std::size_t> pos(task.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& e : task.dag().edges())
    EXPECT_LT(pos[e.from], pos[e.to]) << "edge " << e.from << "->" << e.to;
}

TEST(GraphExecutorTest, PerWorkerAssignmentHonored) {
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker);
  const DagTask task = fig1_task();
  const auto& region = task.blocking_regions()[0];

  // Fork+join on worker 0, everything else on worker 1 (Lemma 3-safe).
  analysis::NodeAssignment asg{
      std::vector<analysis::ThreadId>(task.node_count(), 1)};
  asg.thread_of[region.fork] = 0;
  asg.thread_of[region.join] = 0;

  ExecOptions options;
  options.assignment = asg;
  std::mutex mu;
  std::vector<std::pair<NodeId, std::size_t>> placements;
  GraphExecutor exec(pool, task);
  const ExecReport report = exec.run_blocking(options, [&](NodeId v) {
    std::lock_guard lock(mu);
    placements.emplace_back(v, *ThreadPool::current_worker());
  });
  ASSERT_TRUE(report.completed);
  for (const auto& [node, worker] : placements) {
    if (node == region.fork || node == region.join) {
      EXPECT_EQ(worker, 0u);
    } else {
      EXPECT_EQ(worker, 1u);
    }
  }
}

TEST(GraphExecutorTest, PerWorkerDeadlockWhenChildBehindSuspendedWorker) {
  // All nodes on worker 0: the children sit behind the suspended fork.
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker);
  const DagTask task = fig1_task();
  ExecOptions options;
  options.assignment = analysis::NodeAssignment{
      std::vector<analysis::ThreadId>(task.node_count(), 0)};
  options.watchdog = std::chrono::milliseconds(300);
  GraphExecutor exec(pool, task);
  EXPECT_FALSE(exec.run_blocking(options).completed);
}

TEST(GraphExecutorTest, ValidatesAssignment) {
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker);
  const DagTask task = fig1_task();
  GraphExecutor exec(pool, task);
  EXPECT_THROW(exec.run_blocking(ExecOptions{}), std::invalid_argument);

  ExecOptions bad_size;
  bad_size.assignment = analysis::NodeAssignment{{0}};
  EXPECT_THROW(exec.run_blocking(bad_size), std::invalid_argument);

  ExecOptions bad_index;
  bad_index.assignment = analysis::NodeAssignment{
      std::vector<analysis::ThreadId>(task.node_count(), 7)};
  EXPECT_THROW(exec.run_blocking(bad_index), std::invalid_argument);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  const bool ok = parallel_for(pool, 0, 1000, [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  ASSERT_TRUE(ok);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, GrainChunksRange) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  ParallelForOptions options;
  options.grain = 7;  // 100 / 7 -> 15 chunks, last one partial
  const bool ok = parallel_for(
      pool, 0, 100, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); },
      options);
  ASSERT_TRUE(ok);
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ParallelForTest, EmptyRangeAndValidation) {
  ThreadPool pool(1);
  EXPECT_TRUE(parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); }));
  EXPECT_TRUE(parallel_for(pool, 9, 3, [](std::size_t) { FAIL(); }));

  ParallelForOptions bad;
  bad.grain = 0;
  EXPECT_THROW(parallel_for(pool, 0, 1, [](std::size_t) {}, bad),
               std::invalid_argument);

  ThreadPool per(2, ThreadPool::QueueMode::kPerWorker);
  EXPECT_THROW(parallel_for(per, 0, 1, [](std::size_t) {}),
               std::logic_error);
}

TEST(ParallelForTest, CallerWorkerCountsAsBlocked) {
  // A nested parallel_for from inside a worker suspends that worker — the
  // reduced-concurrency effect, visible through the pool instrumentation.
  ThreadPool pool(3);
  std::atomic<bool> ok{false};
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> done{false};
  pool.submit([&] {
    ok = parallel_for(pool, 0, 8, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
    std::lock_guard lock(mu);  // notify under the lock (cv lifetime)
    done = true;
    cv.notify_all();
  });
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return done.load(); }));
  }
  EXPECT_TRUE(ok.load());
  EXPECT_GE(pool.max_blocked_workers(), 1u);
}

TEST(ParallelForTest, NestedOnSingleWorkerDeadlocksAndTimesOut) {
  // The paper's hazard in API form: a worker of a 1-thread pool calls
  // parallel_for — its chunks can never run because the only worker is
  // blocked waiting for them. The timeout detects the stall.
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  std::atomic<bool> result{true};
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> done{false};
  pool.submit([&] {
    ParallelForOptions options;
    options.timeout = std::chrono::milliseconds(200);
    result = parallel_for(pool, 0, 4, [&](std::size_t) { executed.fetch_add(1); },
                          options);
    std::lock_guard lock(mu);  // notify under the lock (cv lifetime)
    done = true;
    cv.notify_all();
  });
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return done.load(); }));
  EXPECT_FALSE(result.load());  // timed out: live deadlock detected
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(pool.max_blocked_workers(), 1u);
}

TEST(ParallelForTest, ExternalCallerOnSingleWorkerIsFine) {
  // The same call from a NON-worker thread completes: the external caller
  // blocks, the single worker drains the chunks (Listing 1 with l = 1 > 0).
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  EXPECT_TRUE(parallel_for(pool, 0, 16, [&](std::size_t) { executed.fetch_add(1); }));
  EXPECT_EQ(executed.load(), 16);
  EXPECT_EQ(pool.max_blocked_workers(), 0u);  // caller was not a worker
}

TEST(GraphExecutorTest, SyntheticWorkScalesElapsed) {
  ThreadPool pool(2);
  const DagTask task = fig1_task();  // volume = 7 units
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.microseconds_per_unit = 2000.0;  // 2 ms per unit
  const ExecReport report = exec.run_blocking(options);
  ASSERT_TRUE(report.completed);
  // Critical path pre+fork+child+join+post = 5 units = 10 ms minimum.
  EXPECT_GE(report.elapsed.count(), 9000);
}

TEST(ThreadPoolTest, ChurnStress) {
  // Many short-lived pools with in-flight work: destruction must join
  // cleanly whatever the timing (abandoning queued closures is the
  // documented behaviour, so no execution-count assertion here).
  std::atomic<int> executed{0};
  for (int round = 0; round < 30; ++round) {
    ThreadPool pool(1 + round % 4);
    for (int i = 0; i < 50; ++i)
      pool.submit([&] { executed.fetch_add(1, std::memory_order_relaxed); });
    // Destructor races with the queue on purpose.
  }

  // One controlled round: waiting for the work guarantees execution.
  {
    ThreadPool pool(2);
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<int> done{0};
    for (int i = 0; i < 50; ++i)
      pool.submit([&] {
        if (done.fetch_add(1) + 1 == 50) {
          std::lock_guard lock(mu);
          cv.notify_all();
        }
      });
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return done.load() == 50; }));
  }
}

TEST(ThreadPoolTest, ManyConcurrentGraphRuns) {
  // Several executors sharing one pool, back to back: state isolation.
  ThreadPool pool(4);
  const DagTask task = fig1_task();
  for (int run = 0; run < 20; ++run) {
    GraphExecutor exec(pool, task);
    ExecOptions options;
    options.watchdog = std::chrono::seconds(10);
    const auto report =
        run % 2 == 0 ? exec.run_blocking(options) : exec.run_non_blocking(options);
    ASSERT_TRUE(report.completed) << "run=" << run;
    EXPECT_EQ(report.nodes_executed, task.node_count());
  }
}

/// Lemma 1 on real threads: a pool of b̄(τ)+1 workers cannot exhaust its
/// available concurrency, so every generated task must complete with
/// blocking semantics. (The converse — fewer workers CAN deadlock — is
/// demonstrated deterministically by the dedicated tests above.)
class ExecLemmaTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecLemmaTest, EnoughWorkersNeverStall) {
  util::Rng rng(GetParam());
  gen::TaskSetParams params;
  params.cores = 8;
  const model::DagTask task = gen::generate_task(params, 0, 0.5, rng);
  const std::size_t bbar = analysis::max_affecting_forks(task);

  ThreadPool pool(bbar + 1);
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.watchdog = std::chrono::seconds(10);
  const ExecReport report = exec.run_blocking(options);
  EXPECT_TRUE(report.completed) << "seed=" << GetParam() << " bbar=" << bbar;
  EXPECT_EQ(report.nodes_executed, task.node_count());
  EXPECT_LE(report.max_blocked_workers, bbar);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecLemmaTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Routing fixes: kPerWorker submit() without a target must round-robin, not
// funnel everything into worker 0.

TEST(ThreadPoolTest, PerWorkerSubmitRoundRobinsAcrossWorkers) {
  ThreadPool pool(3, ThreadPool::QueueMode::kPerWorker);
  std::atomic<int> done{0};
  std::mutex mu;
  std::set<std::size_t> seen;
  for (int i = 0; i < 30; ++i)
    pool.submit([&] {
      {
        std::lock_guard lock(mu);
        seen.insert(*ThreadPool::current_worker());
      }
      done.fetch_add(1);
    });
  while (done.load() < 30) std::this_thread::yield();
  // No stealing: each closure ran on the worker whose queue received it, so
  // all three workers must have been fed.
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ThreadPoolTest, SubmitHonorsExplicitTarget) {
  ThreadPool pool(3, ThreadPool::QueueMode::kPerWorker);
  std::atomic<int> done{0};
  std::atomic<bool> routed{true};
  for (int i = 0; i < 30; ++i)
    pool.submit([&] {
      if (ThreadPool::current_worker() != 2u) routed = false;
      done.fetch_add(1);
    }, /*target=*/2);
  while (done.load() < 30) std::this_thread::yield();
  EXPECT_TRUE(routed.load());
}

TEST(ThreadPoolTest, SubmitTargetRejectedInSharedMode) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.submit([] {}, /*target=*/0), std::logic_error);
}

TEST(ThreadPoolTest, SubmitBatchToRoutesEachClosure) {
  ThreadPool pool(3, ThreadPool::QueueMode::kPerWorker);
  std::atomic<int> done{0};
  std::atomic<bool> routed{true};
  std::vector<std::pair<std::size_t, std::function<void()>>> items;
  for (std::size_t i = 0; i < 30; ++i) {
    const std::size_t target = i % 3;
    items.emplace_back(target, [&, target] {
      if (ThreadPool::current_worker() != target) routed = false;
      done.fetch_add(1);
    });
  }
  pool.submit_batch_to(std::move(items));
  while (done.load() < 30) std::this_thread::yield();
  EXPECT_TRUE(routed.load());
}

// ---------------------------------------------------------------------------
// Exception containment: a foreign closure that throws must not take the
// worker (or the process) down.

TEST(ThreadPoolTest, ThrowingClosureContainedAndWorkerSurvives) {
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("foreign closure blew up"); });
  std::atomic<bool> ran{false};
  std::mutex mu;
  std::condition_variable cv;
  pool.submit([&] {
    std::lock_guard lock(mu);
    ran = true;
    cv.notify_all();
  });
  std::unique_lock lock(mu);
  ASSERT_TRUE(
      cv.wait_for(lock, std::chrono::seconds(5), [&] { return ran.load(); }));
  EXPECT_EQ(pool.uncaught_exceptions(), 1u);
  EXPECT_EQ(pool.first_uncaught_error(), "foreign closure blew up");
}

// ---------------------------------------------------------------------------
// Stealing suppression during partitioned runs (the Eq. (3) placement must
// be enforced at runtime, or bypassed LOUDLY).

TEST(GraphExecutorTest, PartitionedRunSuppressesStealing) {
  const DagTask task = fig1_task();
  // Stealing is configured on, but the run carries an assignment: the
  // executor must suppress stealing for its duration so every node runs on
  // its assigned worker.
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker, /*steal=*/true);
  ASSERT_TRUE(pool.stealing_configured());
  // Fork+join on worker 0, everything else on worker 1 — a safe placement.
  std::vector<analysis::ThreadId> thread_of(task.node_count(), 1);
  const auto& region = task.blocking_regions()[0];
  thread_of[region.fork] = 0;
  thread_of[region.join] = 0;
  ExecOptions options;
  options.assignment = analysis::NodeAssignment{thread_of};

  GraphExecutor exec(pool, task);
  std::mutex mu;
  bool placement_honored = true;
  const ExecReport report = exec.run_blocking(options, [&](NodeId v) {
    std::lock_guard lock(mu);
    if (ThreadPool::current_worker() != thread_of[v]) placement_honored = false;
  });
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.stealing_bypassed_assignment);
  EXPECT_TRUE(placement_honored);
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(GraphExecutorTest, OptInStealingWithAssignmentIsFlagged) {
  const DagTask task = fig1_task();
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker, /*steal=*/true);
  std::vector<analysis::ThreadId> thread_of(task.node_count(), 1);
  const auto& region = task.blocking_regions()[0];
  thread_of[region.fork] = 0;
  thread_of[region.join] = 0;
  ExecOptions options;
  options.assignment = analysis::NodeAssignment{thread_of};
  options.allow_stealing_with_assignment = true;

  GraphExecutor exec(pool, task);
  const ExecReport report = exec.run_blocking(options);
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.stealing_bypassed_assignment);  // the loud flag
}

// ---------------------------------------------------------------------------
// Emergency workers at the pool level.

TEST(ThreadPoolTest, EmergencyWorkerDrainsTargetedQueues) {
  ThreadPool pool(1, ThreadPool::QueueMode::kPerWorker);
  // Suspend the only base worker at a barrier.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> emergency_ran{false};
  pool.submit_to(0, [&] {
    ThreadPool::BlockedScope blocked(pool);
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  while (pool.blocked_workers() == 0) std::this_thread::yield();
  // Work queued behind the suspended worker is unreachable...
  pool.submit_to(0, [&] {
    if (ThreadPool::current_worker().value_or(0) >= pool.worker_count())
      emergency_ran = true;
    std::lock_guard lock(mu);
    release = true;
    cv.notify_all();
  });
  // ...until an emergency worker drains it, ignoring the placement.
  ASSERT_TRUE(pool.spawn_emergency_worker());
  EXPECT_EQ(pool.emergency_worker_count(), 1u);
  std::unique_lock lock(mu);
  ASSERT_TRUE(
      cv.wait_for(lock, std::chrono::seconds(5), [&] { return release; }));
  EXPECT_TRUE(emergency_ran.load());
}

// ---------------------------------------------------------------------------
// Elastic pool: dynamic workers, dead-worker recovery, accounting.

TEST(ThreadPoolElasticTest, AddWorkersGrowsThePool) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.worker_count(), 2u);
  EXPECT_EQ(pool.add_workers(2), 4u);
  EXPECT_EQ(pool.worker_count(), 4u);
  EXPECT_EQ(pool.slot_count(), 4u);

  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 200; ++i)
    pool.submit([&] {
      if (count.fetch_add(1) + 1 == 200) {
        std::lock_guard lock(mu);
        cv.notify_all();
      }
    });
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return count.load() == 200; }));
}

TEST(ThreadPoolElasticTest, AddedWorkersServeTargetedQueues) {
  ThreadPool pool(1, ThreadPool::QueueMode::kPerWorker);
  ASSERT_EQ(pool.add_workers(1), 2u);
  std::atomic<int> on_new{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  pool.submit_to(1, [&] {
    if (ThreadPool::current_worker() == std::optional<std::size_t>(1)) ++on_new;
    std::lock_guard lock(mu);
    done = true;
    cv.notify_all();
  });
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return done; }));
  EXPECT_EQ(on_new.load(), 1);
}

TEST(ThreadPoolElasticTest, RetireWorkersDrainsQueuedWork) {
  ThreadPool pool(3, ThreadPool::QueueMode::kPerWorker);
  // Park worker 2 behind a gate so its queue backs up, then retire it: the
  // drain protocol must hand the queued closures to the survivors.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> done{0};
  pool.submit_to(2, [&] {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  for (int i = 0; i < 8; ++i)
    pool.submit_to(2, [&] {
      ++done;
      std::lock_guard lock(mu);
      cv.notify_all();
    });
  EXPECT_EQ(pool.retire_workers(1), 2u);
  EXPECT_FALSE(pool.worker_live(2));
  {
    // Only now let the retiring worker finish its closure: the drain
    // protocol hands its backed-up queue to the survivors.
    std::lock_guard lock(mu);
    release = true;
    cv.notify_all();
  }
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return done.load() == 8; }));
  EXPECT_EQ(pool.worker_count(), 2u);
  EXPECT_GE(pool.handed_back(), 8u);
}

TEST(ThreadPoolElasticTest, RetireRefusesToEmptyThePool) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.retire_workers(2), std::invalid_argument);
  EXPECT_EQ(pool.retire_workers(1), 1u);
  EXPECT_THROW(pool.retire_workers(1), std::invalid_argument);
}

TEST(ThreadPoolElasticTest, GrowShrinkCycleRestoresShape) {
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker);
  EXPECT_EQ(pool.add_workers(2), 4u);
  EXPECT_EQ(pool.retire_workers(2), 2u);
  EXPECT_TRUE(pool.worker_live(0));
  EXPECT_TRUE(pool.worker_live(1));
  EXPECT_FALSE(pool.worker_live(2));
  EXPECT_FALSE(pool.worker_live(3));
}

TEST(ThreadPoolElasticTest, DeathRequeuesInFlightClosureExactlyOnce) {
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  pool.submit([&] {
    // Transactional pop: the first attempt kills its worker BEFORE any
    // side effect of the "real" work; the requeued closure runs clean.
    if (runs.fetch_add(1) == 0) throw WorkerDeathSignal{};
    std::lock_guard lock(mu);
    done = true;
    cv.notify_all();
  });
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return done; }));
  }
  EXPECT_EQ(runs.load(), 2);
  EXPECT_EQ(pool.worker_deaths(), 1u);
  EXPECT_EQ(pool.worker_count(), 1u);

  // The slot is recoverable: a respawned replacement restores the size.
  std::size_t dead = 0;
  bool found = false;
  for (const ThreadPool::WorkerStatus& ws : pool.worker_status())
    if (ws.state == ThreadPool::WorkerState::kDead) {
      dead = ws.worker;
      found = true;
    }
  ASSERT_TRUE(found);
  EXPECT_TRUE(pool.respawn_worker(dead));
  EXPECT_FALSE(pool.respawn_worker(dead));  // already live again
  EXPECT_EQ(pool.worker_count(), 2u);
  EXPECT_EQ(pool.respawned_workers(), 1u);
}

TEST(ThreadPoolElasticTest, CondemnRedistributesQueuedWork) {
  // No stealing: only condemn's hand-back can move worker 0's queue.
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker, /*steal=*/false);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> done{0};
  pool.submit_to(0, [&] {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  // Wait until the gate closure is in flight so the rest stays queued.
  while (pool.active() == 0) std::this_thread::yield();
  for (int i = 0; i < 5; ++i)
    pool.submit_to(0, [&] {
      ++done;
      std::lock_guard lock(mu);
      cv.notify_all();
    });

  const ThreadPool::CondemnOutcome out = pool.condemn_worker(0, /*redistribute=*/true);
  EXPECT_TRUE(out.condemned);
  EXPECT_EQ(out.requeued, 5u);
  EXPECT_EQ(out.live_left, 1u);
  EXPECT_FALSE(pool.condemn_worker(0, true).condemned);  // idempotent

  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return done.load() == 5; }));
  release = true;  // let the condemned worker's in-flight closure finish
  cv.notify_all();
}

TEST(ThreadPoolElasticTest, SubmitsRedirectOffAbandonedSlots) {
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker, /*steal=*/false);
  ASSERT_TRUE(pool.condemn_worker(1, /*redistribute=*/true).condemned);
  std::atomic<std::size_t> ran_on{99};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  // The placement target is gone for good: degraded routing must land the
  // closure on the survivor instead of stranding it.
  pool.submit_to(1, [&] {
    ran_on = ThreadPool::current_worker().value_or(99);
    std::lock_guard lock(mu);
    done = true;
    cv.notify_all();
  });
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return done; }));
  EXPECT_EQ(ran_on.load(), 0u);
  EXPECT_GE(pool.redirected_submits(), 1u);
}

TEST(ThreadPoolElasticTest, RespawnAdoptsDeadSlotsQueue) {
  // No stealing and no redistribution: the closure queued behind the death
  // can ONLY run if the replacement adopts the slot's queue.
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker, /*steal=*/false);
  std::atomic<int> runs{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  pool.submit_to(0, [&] {
    if (runs.fetch_add(1) == 0) throw WorkerDeathSignal{};
    std::lock_guard lock(mu);
    done = true;
    cv.notify_all();
  });
  while (pool.worker_deaths() == 0) std::this_thread::yield();
  ASSERT_TRUE(pool.condemn_worker(0, /*redistribute=*/false).condemned);
  ASSERT_TRUE(pool.respawn_worker(0));
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return done; }));
  EXPECT_EQ(runs.load(), 2);
  EXPECT_TRUE(pool.worker_live(0));
}

// ---------------------------------------------------------------------------
// Satellite audit: active() accounting through the emergency-worker
// handoff, and SuppressStealing release on the exception path.

TEST(ThreadPoolTest, ActiveReturnsToZeroAfterEmergencyRescue) {
  ThreadPool pool(2);
  const DagTask task = two_region_task();
  GraphExecutor exec(pool, task);
  ExecOptions options;
  options.watchdog = std::chrono::milliseconds(200);
  options.recovery = RecoveryPolicy::kEmergencyWorker;
  options.max_emergency_workers = 2;
  const ExecReport report = exec.run_blocking(options);
  ASSERT_TRUE(report.completed);
  ASSERT_GE(report.emergency_workers, 1u);
  // The rescued run's closures all finished: in-flight accounting must
  // settle back to zero (the rescuing emergency worker included), or every
  // later quiescence verdict on this pool is skewed.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (pool.active() != 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(pool.active(), 0u);
  EXPECT_EQ(pool.blocked_workers(), 0u);
}

TEST(GraphExecutorTest, SuppressStealingReleasedAfterStallError) {
  // kFailFast throws StallError out of run_blocking while a
  // SuppressStealing scope for the partitioned assignment is alive: the
  // RAII release must run during unwinding or the pool never steals again.
  ThreadPool pool(2, ThreadPool::QueueMode::kPerWorker, /*steal=*/true);
  const DagTask task = fig1_task();
  ExecOptions options;
  options.assignment = analysis::NodeAssignment{
      std::vector<analysis::ThreadId>(task.node_count(), 0)};
  options.watchdog = std::chrono::milliseconds(200);
  options.recovery = RecoveryPolicy::kFailFast;
  GraphExecutor exec(pool, task);
  EXPECT_THROW(exec.run_blocking(options), StallError);
  EXPECT_FALSE(pool.stealing_suppressed());

  // And the pool still steals: queue work behind the (still live) blocked
  // placement target and let another worker take it.
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 4; ++i)
    pool.submit_to(i % 2, [&] {
      if (count.fetch_add(1) + 1 == 4) {
        std::lock_guard lock(mu);
        cv.notify_all();
      }
    });
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return count.load() == 4; }));
}

}  // namespace
}  // namespace rtpool::exec
