// Property tests for the RtaContext fast paths (rta_context.h):
//
//  * the word-parallel FIFO blocking kernel is bit-identical to the naive
//    O(|V|²) double loop on randomized NFJ DAGs and assignments;
//  * scaled-options analyses (wcet_scale) match analyses of materialized
//    scaled task sets;
//  * warm-started fixed points are bit-identical to cold starts across
//    full WCET-scale sweeps (the tentpole claim: warm starts only skip the
//    monotone climb, they never change the landing point);
//  * analyses with and without a caller-provided context agree exactly;
//  * the fast sensitivity searches agree with the legacy generic search.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "analysis/rta_context.h"
#include "analysis/sensitivity.h"
#include "exp/schedulability.h"
#include "gen/taskset_generator.h"
#include "util/rng.h"

namespace rtpool::analysis {
namespace {

using model::DagTask;
using model::TaskSet;
using util::Time;

TaskSet random_set(std::uint64_t seed, std::size_t cores = 4,
                   std::size_t tasks = 4, double util_per_core = 0.35) {
  gen::TaskSetParams params;
  params.cores = cores;
  params.task_count = tasks;
  params.total_utilization = util_per_core * static_cast<double>(cores);
  util::Rng rng(seed);
  return gen::generate_task_set(params, rng);
}

/// The pre-kernel reference: naive O(|V|²) double loop (ascending u).
std::vector<Time> naive_blocking(const DagTask& t, const NodeAssignment& a) {
  const graph::Reachability& reach = t.reachability();
  std::vector<Time> blocking(t.node_count(), 0.0);
  for (model::NodeId v = 0; v < t.node_count(); ++v) {
    if (t.type(v) == model::NodeType::BJ) continue;
    Time b = 0.0;
    for (model::NodeId u = 0; u < t.node_count(); ++u) {
      if (u == v || a.thread_of[u] != a.thread_of[v]) continue;
      if (reach.reaches(u, v) || reach.reaches(v, u)) continue;
      b += t.wcet(u);
    }
    blocking[v] = b;
  }
  return blocking;
}

TEST(RtaContextTest, BlockingVectorMatchesNaiveDoubleLoop) {
  // Random NFJ DAGs under random, worst-fit and Algorithm-1 assignments:
  // the bitset kernel must reproduce the naive loop BIT-identically (the
  // float accumulation order is the same ascending-id order).
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const TaskSet ts = random_set(seed);
    util::Rng rng(seed * 977);
    std::vector<TaskSetPartition> partitions;

    TaskSetPartition random_partition;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      NodeAssignment a;
      for (model::NodeId v = 0; v < ts.task(i).node_count(); ++v)
        a.thread_of.push_back(static_cast<ThreadId>(
            rng.uniform_int(0, static_cast<std::int64_t>(ts.core_count()) - 1)));
      random_partition.per_task.push_back(std::move(a));
    }
    partitions.push_back(std::move(random_partition));
    if (const auto wf = partition_worst_fit(ts); wf.success())
      partitions.push_back(*wf.partition);
    if (const auto alg1 = partition_algorithm1(ts); alg1.success())
      partitions.push_back(*alg1.partition);

    for (const TaskSetPartition& partition : partitions) {
      for (std::size_t i = 0; i < ts.size(); ++i) {
        const auto fast = fifo_blocking_vector(ts.task(i), partition.per_task[i]);
        const auto naive = naive_blocking(ts.task(i), partition.per_task[i]);
        ASSERT_EQ(fast.size(), naive.size());
        for (std::size_t v = 0; v < fast.size(); ++v)
          EXPECT_EQ(fast[v], naive[v]) << "seed " << seed << " task " << i
                                       << " node " << v;
      }
    }
  }
}

TEST(RtaContextTest, WorkloadVectorRejectsOutOfRangeThreads) {
  const TaskSet ts = random_set(3);
  NodeAssignment bad;
  bad.thread_of.assign(ts.task(0).node_count(),
                       static_cast<ThreadId>(ts.core_count()));  // one past end
  EXPECT_THROW(per_core_workload_vector(ts.task(0), bad, ts.core_count()),
               model::ModelError);

  TaskSetPartition partition;
  for (std::size_t i = 0; i < ts.size(); ++i)
    partition.per_task.push_back(
        {std::vector<ThreadId>(ts.task(i).node_count(), 0)});
  partition.per_task[0] = bad;
  EXPECT_THROW(analyze_partitioned(ts, partition), model::ModelError);
}

TEST(RtaContextTest, ContextAndPlainCallsAgreeExactly) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = random_set(seed);
    RtaContext ctx(ts);

    for (bool limited : {false, true}) {
      GlobalRtaOptions opts;
      opts.limited_concurrency = limited;
      const auto plain = analyze_global(ts, opts);
      const auto cached = analyze_global(ts, opts, &ctx);
      ASSERT_EQ(plain.schedulable, cached.schedulable);
      for (std::size_t i = 0; i < ts.size(); ++i)
        EXPECT_EQ(plain.per_task[i].response_time,
                  cached.per_task[i].response_time);
    }

    const auto wf = partition_worst_fit(ts);
    if (!wf.success()) continue;
    for (PartitionedBound bound :
         {PartitionedBound::kSplitPerSegment, PartitionedBound::kHolisticPath}) {
      PartitionedRtaOptions opts;
      opts.require_deadlock_free = false;
      opts.bound = bound;
      const auto plain = analyze_partitioned(ts, *wf.partition, opts);
      const auto cached = analyze_partitioned(ts, *wf.partition, opts, &ctx);
      ASSERT_EQ(plain.schedulable, cached.schedulable);
      for (std::size_t i = 0; i < ts.size(); ++i)
        EXPECT_EQ(plain.per_task[i].response_time,
                  cached.per_task[i].response_time);
    }
  }
}

TEST(RtaContextTest, ScaledOptionsMatchMaterializedScaledSet) {
  // wcet_scale must agree with scale_wcets up to float association
  // (s·(a+b) vs s·a + s·b): compare verdict-for-verdict and response
  // times with a tight relative tolerance.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TaskSet ts = random_set(seed);
    for (double s : {0.5, 1.0, 1.75}) {
      const TaskSet scaled = scale_wcets(ts, s);

      GlobalRtaOptions gopts;
      gopts.limited_concurrency = true;
      GlobalRtaOptions fast_opts = gopts;
      fast_opts.wcet_scale = s;
      const auto ref = analyze_global(scaled, gopts);
      const auto fast = analyze_global(ts, fast_opts);
      for (std::size_t i = 0; i < ts.size(); ++i) {
        const Time a = ref.per_task[i].response_time;
        const Time b = fast.per_task[i].response_time;
        if (std::isfinite(a) || std::isfinite(b)) {
          EXPECT_NEAR(a, b, 1e-6 * std::max(1.0, std::abs(a)))
              << "seed " << seed << " scale " << s << " task " << i;
        }
      }
      // At scale 1 the two paths run literally the same arithmetic.
      if (s == 1.0) {
        ASSERT_EQ(ref.schedulable, fast.schedulable);
        for (std::size_t i = 0; i < ts.size(); ++i)
          EXPECT_EQ(ref.per_task[i].response_time,
                    fast.per_task[i].response_time);
      }
    }
  }
}

/// Run the partitioned RTA at `scale` with a fresh cold context.
PartitionedRtaResult cold_partitioned(const TaskSet& ts,
                                      const TaskSetPartition& partition,
                                      PartitionedRtaOptions opts, double scale) {
  opts.wcet_scale = scale;
  return analyze_partitioned(ts, partition, opts);
}

TEST(RtaContextTest, WarmStartedPartitionedBitIdenticalAcrossScaleSweep) {
  const std::vector<double> scales = {0.25, 0.5, 0.75, 1.0,
                                      1.5,  2.0, 3.0,  4.5};
  std::size_t total_warm_hits = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const TaskSet ts = random_set(seed);
    const auto wf = partition_worst_fit(ts);
    if (!wf.success()) continue;
    for (PartitionedBound bound :
         {PartitionedBound::kSplitPerSegment, PartitionedBound::kHolisticPath}) {
      PartitionedRtaOptions opts;
      opts.require_deadlock_free = false;
      opts.bound = bound;
      RtaContext warm_ctx(ts);
      warm_ctx.set_warm_start(true);
      for (double s : scales) {
        PartitionedRtaOptions sopts = opts;
        sopts.wcet_scale = s;
        const auto warm = analyze_partitioned(ts, *wf.partition, sopts, &warm_ctx);
        const auto cold = cold_partitioned(ts, *wf.partition, opts, s);
        ASSERT_EQ(warm.schedulable, cold.schedulable)
            << "seed " << seed << " scale " << s;
        for (std::size_t i = 0; i < ts.size(); ++i) {
          EXPECT_EQ(warm.per_task[i].response_time,
                    cold.per_task[i].response_time)
              << "seed " << seed << " scale " << s << " task " << i;
          EXPECT_EQ(warm.per_task[i].schedulable, cold.per_task[i].schedulable);
        }
      }
      total_warm_hits += warm_ctx.warm_hits();
    }
  }
  // The sweep must actually have exercised warm starts somewhere.
  EXPECT_GT(total_warm_hits, 0u);
}

TEST(RtaContextTest, WarmStartedGlobalBitIdenticalAcrossScaleSweep) {
  const std::vector<double> scales = {0.25, 0.5, 0.75, 1.0,
                                      1.5,  2.0, 3.0,  4.5};
  std::size_t total_warm_hits = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const TaskSet ts = random_set(seed);
    for (bool limited : {false, true}) {
      for (InterferenceBound bound :
           {InterferenceBound::kPaperCeil, InterferenceBound::kMelaniCarryIn}) {
        GlobalRtaOptions opts;
        opts.limited_concurrency = limited;
        opts.bound = bound;
        RtaContext warm_ctx(ts);
        warm_ctx.set_warm_start(true);
        for (double s : scales) {
          GlobalRtaOptions sopts = opts;
          sopts.wcet_scale = s;
          const auto warm = analyze_global(ts, sopts, &warm_ctx);
          const auto cold = analyze_global(ts, sopts);
          ASSERT_EQ(warm.schedulable, cold.schedulable)
              << "seed " << seed << " scale " << s;
          for (std::size_t i = 0; i < ts.size(); ++i)
            EXPECT_EQ(warm.per_task[i].response_time,
                      cold.per_task[i].response_time)
                << "seed " << seed << " scale " << s << " task " << i;
        }
        total_warm_hits += warm_ctx.warm_hits();
      }
    }
  }
  EXPECT_GT(total_warm_hits, 0u);
}

TEST(RtaContextTest, WarmStartSafeUnderNonMonotoneScaleSequence) {
  // Bisection probes are not monotone; the scale guard must fall back to
  // cold starts whenever the recorded scale exceeds the probe's.
  const std::vector<double> scales = {1.0, 0.4, 2.2, 0.7, 3.1, 1.1};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = random_set(seed);
    GlobalRtaOptions opts;
    opts.limited_concurrency = true;
    RtaContext warm_ctx(ts);
    warm_ctx.set_warm_start(true);
    for (double s : scales) {
      GlobalRtaOptions sopts = opts;
      sopts.wcet_scale = s;
      const auto warm = analyze_global(ts, sopts, &warm_ctx);
      const auto cold = analyze_global(ts, sopts);
      for (std::size_t i = 0; i < ts.size(); ++i)
        EXPECT_EQ(warm.per_task[i].response_time, cold.per_task[i].response_time)
            << "seed " << seed << " scale " << s << " task " << i;
    }
  }
}

TEST(RtaContextTest, WarmStateInvalidatedByRebinding) {
  // Binding a different partition must drop the partitioned warm state
  // (generation mismatch) — results stay cold-identical.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = random_set(seed);
    const auto wf = partition_worst_fit(ts);
    const auto alg1 = partition_algorithm1(ts);
    if (!wf.success() || !alg1.success()) continue;
    PartitionedRtaOptions opts;
    opts.require_deadlock_free = false;
    RtaContext ctx(ts);
    ctx.set_warm_start(true);
    opts.wcet_scale = 0.5;
    (void)analyze_partitioned(ts, *wf.partition, opts, &ctx);
    opts.wcet_scale = 1.5;
    const auto warm = analyze_partitioned(ts, *alg1.partition, opts, &ctx);
    const auto cold = analyze_partitioned(ts, *alg1.partition, opts);
    for (std::size_t i = 0; i < ts.size(); ++i)
      EXPECT_EQ(warm.per_task[i].response_time, cold.per_task[i].response_time)
          << "seed " << seed << " task " << i;
  }
}

TEST(RtaContextTest, SensitivityFastMatchesLegacyGlobal) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = random_set(seed);
    for (bool limited : {false, true}) {
      GlobalRtaOptions opts;
      opts.limited_concurrency = limited;
      const double legacy = critical_scaling_factor(
          ts, [&](const TaskSet& set) {
            return analyze_global(set, opts).schedulable;
          });
      const SensitivityResult fast = critical_scaling_factor_global(ts, opts);
      // Legacy materializes scaled sets (Σ s·C), fast scales on the fly
      // (s·Σ C): verdicts can differ within float noise of the threshold,
      // so factors agree only up to a few tolerances.
      EXPECT_NEAR(fast.factor, legacy, 3.0 * SensitivityOptions{}.tolerance)
          << "seed " << seed << " limited " << limited;
      EXPECT_GT(fast.probes, 0);
    }
  }
}

TEST(RtaContextTest, SensitivityFastMatchesLegacyPartitioned) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = random_set(seed);
    const auto wf = partition_worst_fit(ts);
    if (!wf.success()) continue;
    PartitionedRtaOptions opts;
    opts.require_deadlock_free = false;
    const double legacy = critical_scaling_factor(
        ts, [&](const TaskSet& set) {
          return analyze_partitioned(set, *wf.partition, opts).schedulable;
        });
    const SensitivityResult fast =
        critical_scaling_factor_partitioned(ts, *wf.partition, opts);
    EXPECT_NEAR(fast.factor, legacy, 3.0 * SensitivityOptions{}.tolerance)
        << "seed " << seed;
  }
}

TEST(RtaContextTest, SensitivityWarmIdenticalToColdSearch) {
  // Warm starts and cutoffs must not change the search: same factor, same
  // probe count, bit-for-bit (this is the headline bit-identity claim at
  // the search level).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = random_set(seed);
    GlobalRtaOptions opts;
    opts.limited_concurrency = true;
    SensitivityOptions cold_opts;
    cold_opts.warm_start = false;
    cold_opts.critical_path_cutoff = false;
    SensitivityOptions warm_opts;  // defaults: warm + cutoff on
    const SensitivityResult cold =
        critical_scaling_factor_global(ts, opts, cold_opts);
    const SensitivityResult warm =
        critical_scaling_factor_global(ts, opts, warm_opts);
    EXPECT_EQ(warm.factor, cold.factor) << "seed " << seed;
    EXPECT_EQ(warm.probes, cold.probes) << "seed " << seed;

    const auto wf = partition_worst_fit(ts);
    if (!wf.success()) continue;
    PartitionedRtaOptions popts;
    popts.require_deadlock_free = false;
    const SensitivityResult pcold =
        critical_scaling_factor_partitioned(ts, *wf.partition, popts, cold_opts);
    const SensitivityResult pwarm =
        critical_scaling_factor_partitioned(ts, *wf.partition, popts, warm_opts);
    EXPECT_EQ(pwarm.factor, pcold.factor) << "seed " << seed;
    EXPECT_EQ(pwarm.probes, pcold.probes) << "seed " << seed;
  }
}

TEST(RtaContextTest, SensitivityFederatedFastRuns) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskSet ts = random_set(seed);
    FederatedOptions fopts;
    fopts.limited_concurrency = true;
    const double legacy = critical_scaling_factor(
        ts, [&](const TaskSet& set) {
          return analyze_federated(set, fopts).schedulable;
        });
    const SensitivityResult fast = critical_scaling_factor_federated(ts, fopts);
    EXPECT_NEAR(fast.factor, legacy, 3.0 * SensitivityOptions{}.tolerance)
        << "seed " << seed;
  }
}

TEST(RtaContextTest, EvaluateTaskSetContextInvariant) {
  // The experiment engine's per-trial context must not change verdicts.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TaskSet ts = random_set(seed);
    for (exp::Scheduler sched :
         {exp::Scheduler::kGlobal, exp::Scheduler::kPartitioned}) {
      const exp::SetVerdict plain = exp::evaluate_task_set(sched, ts);
      RtaContext ctx(ts);
      const exp::SetVerdict cached = exp::evaluate_task_set(sched, ts, &ctx);
      EXPECT_EQ(plain, cached) << "seed " << seed;
    }
  }
}

TEST(RtaContextTest, BindPartitionIsNoOpOnIdenticalContent) {
  const TaskSet ts = random_set(2);
  const auto wf = partition_worst_fit(ts);
  ASSERT_TRUE(wf.success());
  RtaContext ctx(ts);
  ctx.bind_partition(*wf.partition);
  const std::uint64_t gen1 = ctx.binding_generation();
  TaskSetPartition copy = *wf.partition;  // different object, same content
  ctx.bind_partition(copy);
  EXPECT_EQ(ctx.binding_generation(), gen1);
  if (const auto alg1 = partition_algorithm1(ts);
      alg1.success() && !(alg1.partition->per_task == wf.partition->per_task)) {
    ctx.bind_partition(*alg1.partition);
    EXPECT_NE(ctx.binding_generation(), gen1);
  }
}

}  // namespace
}  // namespace rtpool::analysis
