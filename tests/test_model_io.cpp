// Unit tests for the .taskset text format (src/model/io.*).
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "model/builder.h"
#include "model/io.h"

namespace rtpool::model {
namespace {

TaskSet sample_set() {
  TaskSet ts(4);
  {
    DagTaskBuilder b("tau0");
    const NodeId pre = b.add_node(10.0, NodeType::NB);
    const auto fj = b.add_blocking_fork_join(20.0, 5.0, {30.0, 30.0});
    b.add_edge(pre, fj.fork);
    b.period(1200.0).priority(0);
    ts.add(b.build());
  }
  ts.add(make_fork_join_task("tau1", 3, 7.5, 333.25, false).with_priority(1));
  return ts;
}

TEST(IoTest, RoundTrip) {
  const TaskSet original = sample_set();
  std::stringstream ss;
  write_task_set(ss, original);
  const TaskSet parsed = read_task_set(ss);

  ASSERT_EQ(parsed.size(), original.size());
  EXPECT_EQ(parsed.core_count(), original.core_count());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const DagTask& a = original.task(i);
    const DagTask& b = parsed.task(i);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_DOUBLE_EQ(a.period(), b.period());
    EXPECT_DOUBLE_EQ(a.deadline(), b.deadline());
    EXPECT_EQ(a.priority(), b.priority());
    ASSERT_EQ(a.node_count(), b.node_count());
    for (NodeId v = 0; v < a.node_count(); ++v) {
      EXPECT_DOUBLE_EQ(a.wcet(v), b.wcet(v));
      EXPECT_EQ(a.type(v), b.type(v));
    }
    EXPECT_EQ(a.dag().edges(), b.dag().edges());
  }
}

TEST(IoTest, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "rtpool_io_test.taskset";
  save_task_set(path.string(), sample_set());
  const TaskSet loaded = load_task_set(path.string());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.task(0).name(), "tau0");
  std::filesystem::remove(path);
}

TEST(IoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_task_set("/nonexistent/rtpool.taskset"), std::runtime_error);
}

TEST(IoTest, ParsesCommentsAndBlankLines) {
  std::stringstream ss(R"(# header comment

taskset cores=2
# a task
task name=t period=10 deadline=10 priority=0 nodes=1
node 0 wcet=1 type=NB
endtask
)");
  const TaskSet ts = read_task_set(ss);
  EXPECT_EQ(ts.size(), 1u);
}

struct BadInput {
  const char* label;
  const char* text;
};

class IoErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(IoErrorTest, Rejects) {
  std::stringstream ss(GetParam().text);
  EXPECT_THROW(read_task_set(ss), ParseError) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    MalformedInputs, IoErrorTest,
    ::testing::Values(
        BadInput{"empty", ""},
        BadInput{"no_header", "task name=t period=1 deadline=1 priority=0 nodes=0\n"},
        BadInput{"dup_header", "taskset cores=2\ntaskset cores=2\n"},
        BadInput{"bad_cores", "taskset cores=0\n"},
        BadInput{"cores_nan", "taskset cores=abc\n"},
        BadInput{"unknown_keyword", "taskset cores=1\nbogus\n"},
        BadInput{"node_outside_task", "taskset cores=1\nnode 0 wcet=1 type=NB\n"},
        BadInput{"edge_outside_task", "taskset cores=1\nedge 0 1\n"},
        BadInput{"stray_endtask", "taskset cores=1\nendtask\n"},
        BadInput{"nested_task",
                 "taskset cores=1\ntask name=a period=1 deadline=1 priority=0 "
                 "nodes=1\ntask name=b period=1 deadline=1 priority=0 nodes=1\n"},
        BadInput{"sparse_node_ids",
                 "taskset cores=1\ntask name=a period=1 deadline=1 priority=0 "
                 "nodes=2\nnode 1 wcet=1 type=NB\nendtask\n"},
        BadInput{"bad_type",
                 "taskset cores=1\ntask name=a period=1 deadline=1 priority=0 "
                 "nodes=1\nnode 0 wcet=1 type=ZZ\nendtask\n"},
        BadInput{"edge_out_of_range",
                 "taskset cores=1\ntask name=a period=1 deadline=1 priority=0 "
                 "nodes=1\nnode 0 wcet=1 type=NB\nedge 0 5\nendtask\n"},
        BadInput{"node_count_mismatch",
                 "taskset cores=1\ntask name=a period=1 deadline=1 priority=0 "
                 "nodes=2\nnode 0 wcet=1 type=NB\nendtask\n"},
        BadInput{"missing_key",
                 "taskset cores=1\ntask name=a period=1 priority=0 nodes=1\n"},
        BadInput{"unterminated_task",
                 "taskset cores=1\ntask name=a period=1 deadline=1 priority=0 "
                 "nodes=1\nnode 0 wcet=1 type=NB\n"}),
    [](const ::testing::TestParamInfo<BadInput>& param_info) {
      return param_info.param.label;
    });

// ---------- shipped sample files ----------

class DataFileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DataFileTest, LoadsAnalyzesAndRoundTrips) {
  const std::string path = std::string(RTPOOL_SOURCE_DIR) + "/data/" + GetParam();
  const TaskSet ts = load_task_set(path);
  EXPECT_GE(ts.size(), 1u);
  EXPECT_GE(ts.core_count(), 2u);

  std::stringstream ss;
  write_task_set(ss, ts);
  const TaskSet again = read_task_set(ss);
  ASSERT_EQ(again.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(again.task(i).name(), ts.task(i).name());
    EXPECT_EQ(again.task(i).node_count(), ts.task(i).node_count());
    EXPECT_DOUBLE_EQ(again.task(i).volume(), ts.task(i).volume());
  }
}

INSTANTIATE_TEST_SUITE_P(Shipped, DataFileTest,
                         ::testing::Values("fig1.taskset",
                                           "fig1c_deadlock.taskset",
                                           "mixed_set.taskset"));

TEST(DataFileTest, Fig1cHasZeroConcurrencyBound) {
  const TaskSet ts = load_task_set(std::string(RTPOOL_SOURCE_DIR) +
                                   "/data/fig1c_deadlock.taskset");
  EXPECT_EQ(ts.task(0).blocking_fork_count(), 2u);
}

TEST(IoTest, ModelErrorsPropagate) {
  // Structurally invalid task (two sources) passes parsing but fails model
  // validation inside DagTask's constructor.
  std::stringstream ss(R"(taskset cores=1
task name=a period=1 deadline=1 priority=0 nodes=2
node 0 wcet=1 type=NB
node 1 wcet=1 type=NB
endtask
)");
  EXPECT_THROW(read_task_set(ss), ModelError);
}

}  // namespace
}  // namespace rtpool::model
