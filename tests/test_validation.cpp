// Cross-module validation: the discrete-event simulator versus the formal
// results of the paper.
//
//  * Lemmas 1+2 (global): a task with l̄(τ) > 0 never deadlocks in
//    simulation; the observed min available concurrency never drops below
//    l̄(τ) (Section 3.1 lower bound is sound).
//  * Lemma 3 (partitioned): Algorithm 1 partitions never deadlock.
//  * Section 4 analyses: simulated response times never exceed the
//    analytical bounds for task sets the analyses accept.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/concurrency.h"
#include "analysis/deadlock.h"
#include "analysis/global_rta.h"
#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "gen/taskset_generator.h"
#include "sim/engine.h"

namespace rtpool {
namespace {

using model::TaskSet;

/// Simulate a handful of hyper-ish periods.
sim::SimConfig sim_config(const TaskSet& ts, sim::SchedulingPolicy policy) {
  sim::SimConfig cfg;
  cfg.policy = policy;
  double max_period = 0.0;
  for (const auto& t : ts.tasks()) max_period = std::max(max_period, t.period());
  cfg.horizon = 12.0 * max_period;
  return cfg;
}

gen::TaskSetParams default_params(std::uint64_t /*seed*/) {
  gen::TaskSetParams params;
  params.cores = 4;
  params.task_count = 3;
  params.total_utilization = 1.6;
  return params;
}

class ValidationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValidationTest, GlobalLowerBoundOnConcurrencyIsSound) {
  util::Rng rng(GetParam());
  const TaskSet ts = gen::generate_task_set(default_params(GetParam()), rng);
  const auto result = sim::simulate(ts, sim_config(ts, sim::SchedulingPolicy::kGlobal));

  for (std::size_t i = 0; i < ts.size(); ++i) {
    const long lbar =
        analysis::available_concurrency_lower_bound(ts.task(i), ts.core_count());
    EXPECT_GE(result.per_task[i].min_available_concurrency, lbar)
        << "seed=" << GetParam() << " task=" << i;
  }
  // Lemmas 1+2: deadlock-free guarantee must hold in the simulated run.
  if (analysis::task_set_deadlock_free_global(ts)) {
    EXPECT_FALSE(result.deadlock.has_value()) << "seed=" << GetParam();
  }
}

TEST_P(ValidationTest, GlobalResponseBoundsDominateSimulation) {
  util::Rng rng(GetParam() + 1000);
  const TaskSet ts = gen::generate_task_set(default_params(GetParam()), rng);

  analysis::GlobalRtaOptions limited;
  limited.limited_concurrency = true;
  const auto rta = analysis::analyze_global(ts, limited);
  if (!rta.schedulable) return;  // only accepted sets carry a guarantee

  const auto result =
      sim::simulate(ts, sim_config(ts, sim::SchedulingPolicy::kGlobal));
  ASSERT_FALSE(result.deadlock.has_value()) << "seed=" << GetParam();
  EXPECT_FALSE(result.any_deadline_miss) << "seed=" << GetParam();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_LE(result.per_task[i].max_response,
              rta.per_task[i].response_time + 1e-6)
        << "seed=" << GetParam() << " task=" << i;
  }
}

TEST_P(ValidationTest, Algorithm1PartitionsNeverDeadlockInSimulation) {
  util::Rng rng(GetParam() + 2000);
  const TaskSet ts = gen::generate_task_set(default_params(GetParam()), rng);
  const auto alg1 = analysis::partition_algorithm1(ts);
  if (!alg1.success()) return;
  // Lemma 3 needs l̄ > 0 as well; Algorithm 1 alone does not enforce it.
  if (!analysis::task_set_deadlock_free_partitioned(ts, *alg1.partition)) return;

  auto cfg = sim_config(ts, sim::SchedulingPolicy::kPartitioned);
  cfg.partition = *alg1.partition;
  const auto result = sim::simulate(ts, cfg);
  EXPECT_FALSE(result.deadlock.has_value()) << "seed=" << GetParam();
}

TEST_P(ValidationTest, PartitionedResponseBoundsDominateSimulation) {
  util::Rng rng(GetParam() + 3000);
  const TaskSet ts = gen::generate_task_set(default_params(GetParam()), rng);
  const auto alg1 = analysis::partition_algorithm1(ts);
  if (!alg1.success()) return;
  const auto rta = analysis::analyze_partitioned(ts, *alg1.partition);
  if (!rta.schedulable) return;

  auto cfg = sim_config(ts, sim::SchedulingPolicy::kPartitioned);
  cfg.partition = *alg1.partition;
  const auto result = sim::simulate(ts, cfg);
  ASSERT_FALSE(result.deadlock.has_value()) << "seed=" << GetParam();
  EXPECT_FALSE(result.any_deadline_miss) << "seed=" << GetParam();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_LE(result.per_task[i].max_response,
              rta.per_task[i].response_time + 1e-6)
        << "seed=" << GetParam() << " task=" << i;
  }
}

TEST_P(ValidationTest, SporadicReleasesStayWithinPeriodicBounds) {
  // Response-time bounds hold for sporadic arrivals too (minimum
  // inter-arrival = T): check against the limited-concurrency global test.
  util::Rng rng(GetParam() + 4000);
  const TaskSet ts = gen::generate_task_set(default_params(GetParam()), rng);
  analysis::GlobalRtaOptions limited;
  limited.limited_concurrency = true;
  const auto rta = analysis::analyze_global(ts, limited);
  if (!rta.schedulable) return;

  auto cfg = sim_config(ts, sim::SchedulingPolicy::kGlobal);
  cfg.release_jitter_frac = 0.4;
  cfg.seed = GetParam();
  const auto result = sim::simulate(ts, cfg);
  EXPECT_FALSE(result.any_deadline_miss) << "seed=" << GetParam();
}

TEST_P(ValidationTest, TraceInvariantsHold) {
  // Structural invariants of simulator traces on random task sets:
  // (a) intervals on one core never overlap;
  // (b) every interval carries valid task/node ids and positive length
  //     within [0, horizon];
  // (c) the per-task executed time never exceeds vol * jobs_released and
  //     reaches vol * jobs_completed.
  util::Rng rng(GetParam() + 5000);
  const TaskSet ts = gen::generate_task_set(default_params(GetParam()), rng);
  auto cfg = sim_config(ts, sim::SchedulingPolicy::kGlobal);
  cfg.collect_trace = true;
  const auto result = sim::simulate(ts, cfg);

  std::vector<std::vector<std::pair<double, double>>> per_core(ts.core_count());
  std::vector<double> executed(ts.size(), 0.0);
  for (const auto& iv : result.trace) {
    ASSERT_LT(iv.core, ts.core_count());
    ASSERT_LT(iv.task_index, ts.size());
    ASSERT_LT(iv.node, ts.task(iv.task_index).node_count());
    EXPECT_GT(iv.end, iv.start);
    EXPECT_GE(iv.start, -1e-9);
    EXPECT_LE(iv.end, cfg.horizon + 1e-6);
    per_core[iv.core].emplace_back(iv.start, iv.end);
    executed[iv.task_index] += iv.end - iv.start;
  }
  for (auto& intervals : per_core) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t k = 1; k < intervals.size(); ++k)
      EXPECT_LE(intervals[k - 1].second, intervals[k].first + 1e-9)
          << "seed=" << GetParam();
  }
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const double vol = ts.task(i).volume();
    const auto& stats = result.per_task[i];
    // Relative slack: completion tolerances scale with simulated time, so
    // long traces accumulate O(eps * t) rounding per job.
    const double hi = vol * static_cast<double>(stats.jobs_released);
    const double lo = vol * static_cast<double>(stats.jobs_completed);
    EXPECT_LE(executed[i], hi * (1.0 + 1e-6) + 1e-6) << "seed=" << GetParam();
    EXPECT_GE(executed[i], lo * (1.0 - 1e-6) - 1e-6) << "seed=" << GetParam();
  }
}

TEST_P(ValidationTest, StealingNeverDeadlocksWhenGlobalDoesNot) {
  // Footnote 1 as a property: with per-thread queues + stealing, any
  // placement is rescued whenever the global-queue run makes progress
  // (both stall only if l(t) = 0, which l̄ > 0 excludes).
  util::Rng rng(GetParam() + 6000);
  const TaskSet ts = gen::generate_task_set(default_params(GetParam()), rng);
  if (!analysis::task_set_deadlock_free_global(ts)) return;

  // Adversarial placement: every node on thread 0.
  analysis::TaskSetPartition partition;
  for (const auto& t : ts.tasks())
    partition.per_task.push_back(
        {std::vector<analysis::ThreadId>(t.node_count(), 0)});

  auto cfg = sim_config(ts, sim::SchedulingPolicy::kPartitioned);
  cfg.partition = partition;
  cfg.work_stealing = true;
  const auto run = sim::simulate(ts, cfg);
  EXPECT_FALSE(run.deadlock.has_value()) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidationTest,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace rtpool
