// Property tests for incremental re-analysis (RtaContext::begin_incremental):
//
//  * BIT-IDENTITY — over seeded single-task mutation streams (WCET scale
//    up/down, period stretch, deadline shrink), an incremental run that
//    copies the clean priority-order prefix from the prior context produces
//    a Report equal (operator==, certificates included) to a cold run of
//    the mutated set, for the global AND partitioned analyzer families;
//  * the copied certificates pass the independent checker (cert_check.h);
//  * prefix semantics — the copyable prefix is exactly the priority-order
//    position of the (single) dirty task; a no-op "mutation" copies every
//    task and reproduces the prior Report verbatim;
//  * context reuse — reset() rebinding a context across task sets yields
//    Reports identical to fresh per-set contexts, for every registered
//    analyzer (the experiment engine's per-worker reuse contract).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/cert_check.h"
#include "analysis/partition.h"
#include "analysis/rta_context.h"
#include "gen/taskset_generator.h"
#include "model/task_set.h"
#include "util/rng.h"

namespace rtpool::analysis {
namespace {

using model::DagTask;
using model::TaskSet;
using util::Time;

TaskSet random_set(std::uint64_t seed, std::size_t cores = 4,
                   std::size_t tasks = 4, double util_per_core = 0.35) {
  gen::TaskSetParams params;
  params.cores = cores;
  params.task_count = tasks;
  params.total_utilization = util_per_core * static_cast<double>(cores);
  util::Rng rng(seed);
  return gen::generate_task_set(params, rng);
}

constexpr int kMutationKinds = 4;

/// Rebuild task `t` with one parameter changed; priorities (and hence the
/// set's priority order) are never touched, so the mutation dirties exactly
/// one task's analysis inputs.
DagTask mutate_task(const DagTask& t, int kind) {
  std::vector<model::Node> nodes;
  nodes.reserve(t.node_count());
  for (model::NodeId v = 0; v < t.node_count(); ++v) nodes.push_back(t.node(v));
  Time period = t.period();
  Time deadline = t.deadline();
  switch (kind % kMutationKinds) {
    case 0:
      for (model::Node& n : nodes) n.wcet *= 1.25;
      break;
    case 1:
      for (model::Node& n : nodes) n.wcet *= 0.8;
      break;
    case 2:
      period *= 1.5;  // deadline unchanged: still <= period
      break;
    case 3:
      deadline *= 0.9;
      break;
  }
  return DagTask(t.name(), t.dag(), std::move(nodes), period, deadline,
                 t.priority());
}

TaskSet mutate_set(const TaskSet& ts, std::size_t k, int kind) {
  TaskSet out(ts.core_count());
  for (std::size_t i = 0; i < ts.size(); ++i)
    out.add(i == k ? mutate_task(ts.task(i), kind) : ts.task(i));
  return out;
}

std::vector<std::optional<std::size_t>> identity_map(std::size_t n) {
  std::vector<std::optional<std::size_t>> map(n);
  for (std::size_t i = 0; i < n; ++i) map[i] = i;
  return map;
}

std::vector<char> dirty_only(std::size_t n, std::size_t k) {
  std::vector<char> dirty(n, 0);
  dirty[k] = 1;
  return dirty;
}

/// Priority-order position of task k (== expected copyable prefix when k is
/// the only dirty task).
std::size_t priority_position(const TaskSet& ts, std::size_t k) {
  const std::vector<std::size_t> order = ts.priority_order();
  for (std::size_t pos = 0; pos < order.size(); ++pos)
    if (order[pos] == k) return pos;
  ADD_FAILURE() << "task " << k << " missing from priority order";
  return 0;
}

void expect_checkable(const Report& report, const TaskSet& ts,
                      const std::string& where) {
  ASSERT_NE(report.certificate, nullptr) << where;
  const cert::CheckResult chk = cert::check_certificate(ts, *report.certificate);
  EXPECT_TRUE(chk.ok()) << where << ": "
                        << (chk.ok() ? "" : chk.failure->detail);
}

// ---------------------------------------------------------------------------
// Single-task mutations: incremental == cold, certificates check out.

TEST(IncrementalTest, GlobalIncrementalBitIdenticalUnderSingleTaskMutation) {
  const Analyzer& analyzer = get_analyzer("global-limited");
  AnalyzerOptions opts;
  opts.diagnostics = true;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const TaskSet ts = random_set(seed);
    RtaContext prior(ts);
    prior.set_snapshots(true);
    analyzer.analyze(ts, prior, opts);

    for (std::size_t k = 0; k < ts.size(); ++k) {
      for (int kind = 0; kind < kMutationKinds; ++kind) {
        const TaskSet mutated = mutate_set(ts, k, kind);
        RtaContext ctx(mutated);
        const std::size_t prefix = ctx.begin_incremental(
            prior, identity_map(ts.size()), dirty_only(ts.size(), k));
        EXPECT_EQ(prefix, priority_position(ts, k))
            << "seed " << seed << " task " << k << " kind " << kind;

        const Report inc = analyzer.analyze(mutated, ctx, opts);
        const Report cold = analyzer.analyze(mutated, opts);
        EXPECT_TRUE(inc == cold)
            << "seed " << seed << " task " << k << " kind " << kind
            << ": incremental report diverged from cold";
        EXPECT_EQ(ctx.incremental_hits(), prefix)
            << "seed " << seed << " task " << k << " kind " << kind;
        expect_checkable(inc, mutated, "global incremental certificate");
      }
    }
  }
}

TEST(IncrementalTest, PartitionedIncrementalBitIdenticalUnderSingleTaskMutation) {
  const Analyzer& analyzer = get_analyzer("partitioned-proposed");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const TaskSet ts = random_set(seed);
    // One fixed partition for prior, incremental and cold runs: mutations
    // keep every node count, so the binding stays valid, and identical
    // rows let the prefix reuse engage (rows are part of the guard).
    const PartitionResult pr = analyzer.make_partition(ts);
    if (!pr.success()) continue;
    AnalyzerOptions opts;
    opts.diagnostics = true;
    opts.partition = &*pr.partition;

    RtaContext prior(ts);
    prior.set_snapshots(true);
    analyzer.analyze(ts, prior, opts);

    for (std::size_t k = 0; k < ts.size(); ++k) {
      for (int kind = 0; kind < kMutationKinds; ++kind) {
        const TaskSet mutated = mutate_set(ts, k, kind);
        RtaContext ctx(mutated);
        const std::size_t prefix = ctx.begin_incremental(
            prior, identity_map(ts.size()), dirty_only(ts.size(), k));

        const Report inc = analyzer.analyze(mutated, ctx, opts);
        const Report cold = analyzer.analyze(mutated, opts);
        EXPECT_TRUE(inc == cold)
            << "seed " << seed << " task " << k << " kind " << kind
            << ": incremental report diverged from cold";
        EXPECT_EQ(ctx.incremental_hits(), prefix)
            << "seed " << seed << " task " << k << " kind " << kind;
        expect_checkable(inc, mutated, "partitioned incremental certificate");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded mutation STREAMS: the prior context itself came from an
// incremental run — reuse must compose across generations.

TEST(IncrementalTest, MutationStreamStaysBitIdenticalAcrossGenerations) {
  for (const std::uint64_t seed : {3u, 17u, 59u}) {
    util::Rng rng(seed);
    for (const char* name : {"global-limited", "partitioned-baseline"}) {
      const Analyzer& analyzer = get_analyzer(name);
      auto current = std::make_shared<TaskSet>(random_set(seed));
      AnalyzerOptions opts;
      opts.diagnostics = true;
      PartitionResult pr;
      if (analyzer.capabilities().uses_partition) {
        pr = analyzer.make_partition(*current);
        if (!pr.success()) continue;
        opts.partition = &*pr.partition;
      }

      auto prior = std::make_unique<RtaContext>(*current);
      prior->set_snapshots(true);
      analyzer.analyze(*current, *prior, opts);

      std::vector<std::shared_ptr<TaskSet>> keep_alive{current};
      for (int step = 0; step < 6; ++step) {
        const std::size_t k = rng.index(current->size());
        const int kind = static_cast<int>(rng.index(kMutationKinds));
        auto mutated = std::make_shared<TaskSet>(mutate_set(*current, k, kind));
        keep_alive.push_back(mutated);

        auto ctx = std::make_unique<RtaContext>(*mutated);
        ctx->set_snapshots(true);  // next generation copies from this run
        ctx->begin_incremental(*prior, identity_map(mutated->size()),
                               dirty_only(mutated->size(), k));
        const Report inc = analyzer.analyze(*mutated, *ctx, opts);
        const Report cold = analyzer.analyze(*mutated, opts);
        EXPECT_TRUE(inc == cold) << name << " seed " << seed << " step "
                                 << step << ": diverged from cold";
        expect_checkable(inc, *mutated, "stream certificate");

        current = mutated;
        prior = std::move(ctx);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Prefix semantics.

TEST(IncrementalTest, NoopMutationCopiesEveryTaskAndReproducesPriorReport) {
  const Analyzer& analyzer = get_analyzer("global-limited");
  AnalyzerOptions opts;
  opts.diagnostics = true;
  const TaskSet ts = random_set(7);
  RtaContext prior(ts);
  prior.set_snapshots(true);
  const Report first = analyzer.analyze(ts, prior, opts);

  TaskSet same(ts.core_count());
  for (std::size_t i = 0; i < ts.size(); ++i) same.add(ts.task(i));

  RtaContext ctx(same);
  const std::size_t prefix =
      ctx.begin_incremental(prior, identity_map(ts.size()), /*dirty=*/{});
  EXPECT_EQ(prefix, ts.size());
  const Report again = analyzer.analyze(same, ctx, opts);
  EXPECT_TRUE(again == first);
  EXPECT_EQ(ctx.incremental_hits(), ts.size());
}

TEST(IncrementalTest, DirtyHighestPriorityTaskCopiesNothing) {
  const Analyzer& analyzer = get_analyzer("global-limited");
  AnalyzerOptions opts;
  opts.diagnostics = true;
  const TaskSet ts = random_set(11);
  RtaContext prior(ts);
  prior.set_snapshots(true);
  analyzer.analyze(ts, prior, opts);

  const std::size_t top = ts.priority_order().front();
  const TaskSet mutated = mutate_set(ts, top, 0);
  RtaContext ctx(mutated);
  const std::size_t prefix = ctx.begin_incremental(
      prior, identity_map(ts.size()), dirty_only(ts.size(), top));
  EXPECT_EQ(prefix, 0u);
  const Report inc = analyzer.analyze(mutated, ctx, opts);
  const Report cold = analyzer.analyze(mutated, opts);
  EXPECT_TRUE(inc == cold);
  EXPECT_EQ(ctx.incremental_hits(), 0u);
}

// ---------------------------------------------------------------------------
// Context reuse via reset(): the engine's per-worker contract, across every
// registered analyzer.

TEST(IncrementalTest, ResetReuseMatchesFreshContextAcrossAllAnalyzers) {
  for (const Analyzer* analyzer : registered_analyzers()) {
    std::optional<RtaContext> reused;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const TaskSet ts = random_set(seed);
      AnalyzerOptions opts;
      opts.diagnostics = true;
      PartitionResult pr;
      if (analyzer->capabilities().uses_partition) {
        pr = analyzer->make_partition(ts);
        if (!pr.success()) continue;
        opts.partition = &*pr.partition;
      }
      if (!reused.has_value())
        reused.emplace(ts);
      else
        reused->reset(ts);
      RtaContext fresh(ts);
      const Report a = analyzer->analyze(ts, *reused, opts);
      const Report b = analyzer->analyze(ts, fresh, opts);
      EXPECT_TRUE(a == b) << analyzer->name() << " seed " << seed
                          << ": reused context diverged from fresh";
    }
  }
}

}  // namespace
}  // namespace rtpool::analysis
