// Unit tests for src/util: time helpers, RNG, UUniFast, bitset, stats, CSV,
// and the CLI argument parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "util/args.h"
#include "util/bitset.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/uunifast.h"

namespace rtpool::util {
namespace {

// ---------- time helpers ----------

TEST(TimeTest, EqualityTolerance) {
  EXPECT_TRUE(time_eq(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(time_eq(1.0, 1.0001));
  EXPECT_TRUE(time_eq(1e9, 1e9 + 1e-3));  // relative tolerance
}

TEST(TimeTest, Ordering) {
  EXPECT_TRUE(time_lt(1.0, 2.0));
  EXPECT_FALSE(time_lt(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(time_le(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(time_le(1.0, 2.0));
  EXPECT_FALSE(time_le(2.0, 1.0));
}

TEST(TimeTest, RobustCeilDoesNotBumpNearIntegers) {
  EXPECT_DOUBLE_EQ(ceil_robust(3.0), 3.0);
  EXPECT_DOUBLE_EQ(ceil_robust(3.0 + 1e-12), 3.0);
  EXPECT_DOUBLE_EQ(ceil_robust(3.0 - 1e-12), 3.0);
  EXPECT_DOUBLE_EQ(ceil_robust(3.1), 4.0);
  EXPECT_DOUBLE_EQ(ceil_robust(-1.5), -1.0);
}

TEST(TimeTest, CeilDiv) {
  EXPECT_DOUBLE_EQ(ceil_div(10.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(ceil_div(10.1, 5.0), 3.0);
  // 0.3 / 0.1 is not exactly 3 in binary floating point.
  EXPECT_DOUBLE_EQ(ceil_div(0.3, 0.1), 3.0);
}

// ---------- rng ----------

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(RngTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(1);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(1, 4);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 4);
    saw_lo = saw_lo || x == 1;
    saw_hi = saw_hi || x == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, IndexThrowsOnEmpty) {
  Rng rng(3);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(RngTest, ForkProducesDifferentStream) {
  Rng parent(5);
  Rng child = parent.fork();
  bool differs = false;
  for (int i = 0; i < 10; ++i)
    differs = differs || parent.uniform(0, 1) != child.uniform(0, 1);
  EXPECT_TRUE(differs);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

// ---------- uunifast ----------

TEST(UUniFastTest, SumsToTarget) {
  Rng rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    const auto u = uunifast(8, 4.0, rng);
    ASSERT_EQ(u.size(), 8u);
    const double sum = std::accumulate(u.begin(), u.end(), 0.0);
    EXPECT_NEAR(sum, 4.0, 1e-9);
    for (double x : u) EXPECT_GE(x, 0.0);
  }
}

TEST(UUniFastTest, SingleTask) {
  Rng rng(1);
  const auto u = uunifast(1, 0.7, rng);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.7);
}

TEST(UUniFastTest, RejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(uunifast(0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(uunifast(4, 0.0, rng), std::invalid_argument);
}

TEST(UUniFastTest, CappedRespectsCap) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const auto u = uunifast_capped(4, 2.0, 1.0, rng);
    for (double x : u) EXPECT_LE(x, 1.0);
  }
}

TEST(UUniFastTest, CappedInfeasibleThrows) {
  Rng rng(9);
  EXPECT_THROW(uunifast_capped(2, 3.0, 1.0, rng), std::invalid_argument);
}

// ---------- bitset ----------

TEST(BitsetTest, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(BitsetTest, OutOfRangeThrows) {
  DynamicBitset b(10);
  EXPECT_THROW(b.test(10), std::out_of_range);
  EXPECT_THROW(b.set(10), std::out_of_range);
}

TEST(BitsetTest, SetAllRespectsTail) {
  DynamicBitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
}

TEST(BitsetTest, SetAlgebra) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.set(3);
  a.set(77);
  b.set(77);
  b.set(99);
  EXPECT_TRUE(a.intersects(b));
  DynamicBitset c = a;
  EXPECT_TRUE(c.or_assign(b));
  EXPECT_EQ(c.count(), 3u);
  EXPECT_FALSE(c.or_assign(b));  // no change the second time
  c.and_assign(b);
  EXPECT_EQ(c.count(), 2u);
  c.and_not_assign(a);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_TRUE(c.test(99));
}

TEST(BitsetTest, SizeMismatchThrows) {
  DynamicBitset a(10);
  DynamicBitset b(11);
  EXPECT_THROW(a.or_assign(b), std::invalid_argument);
  EXPECT_THROW(a.intersects(b), std::invalid_argument);
}

TEST(BitsetTest, ForEachAscending) {
  DynamicBitset b(200);
  const std::vector<std::size_t> want{0, 63, 64, 65, 128, 199};
  for (auto i : want) b.set(i);
  EXPECT_EQ(b.to_indices(), want);
}

// ---------- stats ----------

TEST(StatsTest, RunningStats) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, EmptyStats) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(StatsTest, RatioCounter) {
  RatioCounter c;
  c.add(true);
  c.add(false);
  c.add(true);
  c.add(true);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_EQ(c.hits(), 3u);
  EXPECT_DOUBLE_EQ(c.ratio(), 0.75);
}

TEST(StatsTest, Percentile) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101), std::invalid_argument);
}

// ---------- csv ----------

TEST(CsvTest, WritesEscapedRows) {
  const auto path = std::filesystem::temp_directory_path() / "rtpool_csv_test.csv";
  {
    CsvWriter csv(path.string(), {"a", "b"});
    csv.row({"1", "plain"});
    csv.row({"2", "with,comma"});
    csv.row({"3", "with\"quote"});
    csv.row_values(4, 2.5);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,plain");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"with\"\"quote\"");
  std::getline(in, line);
  EXPECT_EQ(line, "4,2.5");
  std::filesystem::remove(path);
}

TEST(CsvTest, CellCountMismatchThrows) {
  const auto path = std::filesystem::temp_directory_path() / "rtpool_csv_test2.csv";
  CsvWriter csv(path.string(), {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
  std::filesystem::remove(path);
}

// ---------- args ----------

TEST(ArgsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--m=8", "--trials", "100", "--verbose"};
  Args args(5, argv, {"m", "trials", "verbose", "unused"});
  EXPECT_EQ(args.get_int("m", 0), 8);
  EXPECT_EQ(args.get_int("trials", 0), 100);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("unused", 7), 7);
  EXPECT_FALSE(args.has("unused"));
}

TEST(ArgsTest, RejectsUnknownKey) {
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_THROW(Args(2, argv, {"m"}), std::invalid_argument);
}

TEST(ArgsTest, RejectsPositional) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(Args(2, argv, {"m"}), std::invalid_argument);
}

TEST(ArgsTest, TypeErrors) {
  const char* argv[] = {"prog", "--m=abc"};
  Args args(2, argv, {"m"});
  EXPECT_THROW(args.get_int("m", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("m", 0), std::invalid_argument);
  EXPECT_THROW(args.get_bool("m", false), std::invalid_argument);
}

TEST(ArgsTest, Uint64ParsesFullRangeAndRejectsNegatives) {
  const char* argv[] = {"prog", "--seed=18446744073709551615", "--neg=-3",
                        "--junk=12x"};
  Args args(4, argv, {"seed", "neg", "junk"});
  EXPECT_EQ(args.get_uint64("seed", 0), 18446744073709551615ull);
  EXPECT_EQ(args.get_uint64("missing", 42), 42u);
  // get_int would silently wrap a negative into a huge unsigned; get_uint64
  // rejects it loudly, along with trailing garbage.
  EXPECT_THROW(args.get_uint64("neg", 0), std::invalid_argument);
  EXPECT_THROW(args.get_uint64("junk", 0), std::invalid_argument);
}

TEST(ArgsTest, IntList) {
  const char* argv[] = {"prog", "--ms=2,4,8"};
  Args args(2, argv, {"ms"});
  const auto v = args.get_int_list("ms", {});
  EXPECT_EQ(v, (std::vector<std::int64_t>{2, 4, 8}));
  const auto fallback = args.get_int_list("missing", {1});
  EXPECT_EQ(fallback, (std::vector<std::int64_t>{1}));
}

}  // namespace
}  // namespace rtpool::util
