// Tests for the analysis spine (analysis/analyzer.h): registry behaviour,
// golden bit-equivalence against the family kernels, the exp-layer enum ↔
// pair aliasing, and degenerate-input robustness of every registered
// analyzer.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/rta_context.h"
#include "analysis/sensitivity.h"
#include "exp/schedulability.h"
#include "gen/taskset_generator.h"
#include "model/builder.h"

namespace rtpool {
namespace {

using analysis::Analyzer;
using analysis::AnalyzerOptions;
using analysis::Report;
using analysis::RtaContext;
using model::DagTaskBuilder;
using model::TaskSet;

/// Figure-2 style generation (m = 8, NFJ 3..5 branches), the workload the
/// golden equivalence is recorded on.
TaskSet fig2_set(std::uint64_t seed, double util_frac) {
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 6;
  params.nfj.min_branches = 3;
  params.nfj.max_branches = 5;
  params.total_utilization = util_frac * 8.0;
  util::Rng rng(seed);
  return gen::generate_task_set(params, rng);
}

/// A set with a blocking region on m = 1: l̄ = 0, so Algorithm 1 has no
/// feasible binding and the limited global test rejects at any scale.
TaskSet unbindable_set() {
  TaskSet ts(1);
  DagTaskBuilder b("blocky");
  b.add_blocking_fork_join(1.0, 1.0, {1.0});
  b.period(1000.0);
  ts.add(b.build());
  return ts;
}

// ---- registry ----

TEST(AnalyzerRegistryTest, BuiltinsAreRegistered) {
  const char* expected[] = {
      "global-baseline",          "global-baseline-carryin",
      "global-limited",           "global-limited-carryin",
      "global-limited-antichain", "global-limited-antichain-carryin",
      "partitioned-baseline",     "partitioned-baseline-holistic",
      "partitioned-proposed",     "partitioned-proposed-holistic",
      "federated",                "federated-limited"};
  for (const char* name : expected) {
    const Analyzer* a = analysis::find_analyzer(name);
    ASSERT_NE(a, nullptr) << name;
    EXPECT_EQ(a->name(), name);
    EXPECT_FALSE(a->description().empty()) << name;
    EXPECT_EQ(&analysis::get_analyzer(name), a);
  }

  const auto all = analysis::registered_analyzers();
  EXPECT_GE(all.size(), 12u);
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(all[i - 1]->name(), all[i]->name());
}

TEST(AnalyzerRegistryTest, UnknownNames) {
  EXPECT_EQ(analysis::find_analyzer("no-such-analyzer"), nullptr);
  try {
    analysis::get_analyzer("no-such-analyzer");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error must list the registered names.
    EXPECT_NE(std::string(e.what()).find("global-limited"), std::string::npos);
  }
}

TEST(AnalyzerRegistryTest, Capabilities) {
  const auto glob = analysis::get_analyzer("global-limited").capabilities();
  EXPECT_FALSE(glob.uses_partition);
  EXPECT_TRUE(glob.reports_response_times);
  EXPECT_TRUE(glob.supports_warm_start);

  const auto part = analysis::get_analyzer("partitioned-proposed").capabilities();
  EXPECT_TRUE(part.uses_partition);
  EXPECT_TRUE(part.reports_response_times);

  const auto fed = analysis::get_analyzer("federated").capabilities();
  EXPECT_FALSE(fed.uses_partition);
  EXPECT_FALSE(fed.reports_response_times);
}

TEST(AnalyzerRegistryTest, LegacyOptionResolvers) {
  analysis::GlobalRtaOptions g;
  EXPECT_EQ(analysis::analyzer_for(g).name(), "global-baseline");
  g.bound = analysis::InterferenceBound::kMelaniCarryIn;
  EXPECT_EQ(analysis::analyzer_for(g).name(), "global-baseline-carryin");
  g.limited_concurrency = true;
  EXPECT_EQ(analysis::analyzer_for(g).name(), "global-limited-carryin");
  g.bound = analysis::InterferenceBound::kPaperCeil;
  g.concurrency = analysis::ConcurrencyBound::kMaxAntichain;
  EXPECT_EQ(analysis::analyzer_for(g).name(), "global-limited-antichain");

  analysis::PartitionedRtaOptions p;
  EXPECT_EQ(analysis::analyzer_for(p).name(), "partitioned-proposed");
  p.bound = analysis::PartitionedBound::kHolisticPath;
  EXPECT_EQ(analysis::analyzer_for(p).name(), "partitioned-proposed-holistic");
  p.require_deadlock_free = false;
  EXPECT_EQ(analysis::analyzer_for(p).name(), "partitioned-baseline-holistic");

  analysis::FederatedOptions f;
  EXPECT_EQ(analysis::analyzer_for(f).name(), "federated");
  f.limited_concurrency = true;
  EXPECT_EQ(analysis::analyzer_for(f).name(), "federated-limited");
}

namespace {
class StubAnalyzer final : public Analyzer {
 public:
  std::string_view name() const override { return "test-stub"; }
  std::string_view description() const override { return "accepts everything"; }
  analysis::AnalyzerCapabilities capabilities() const override { return {}; }
  Report analyze(const TaskSet& ts, RtaContext& /*ctx*/,
                 const AnalyzerOptions& /*options*/) const override {
    Report rep;
    rep.analyzer = std::string(name());
    rep.schedulable = true;
    rep.per_task.assign(ts.size(), analysis::TaskVerdict{});
    for (auto& v : rep.per_task) v.schedulable = true;
    return rep;
  }
};
}  // namespace

TEST(AnalyzerRegistryTest, CustomRegistration) {
  if (analysis::find_analyzer("test-stub") == nullptr)
    analysis::register_analyzer(std::make_unique<StubAnalyzer>());
  const Analyzer& stub = analysis::get_analyzer("test-stub");
  const Report rep = stub.analyze(fig2_set(7, 0.3));
  EXPECT_TRUE(rep.schedulable);
  EXPECT_EQ(rep.per_task.size(), 6u);

  // Duplicate and empty registrations are rejected.
  EXPECT_THROW(analysis::register_analyzer(std::make_unique<StubAnalyzer>()),
               std::invalid_argument);
  EXPECT_THROW(analysis::register_analyzer(nullptr), std::invalid_argument);
}

// ---- golden equivalence with the family kernels ----

TEST(AnalyzerGoldenTest, GlobalFamilyBitIdentical) {
  struct Config {
    bool limited;
    analysis::ConcurrencyBound conc;
    analysis::InterferenceBound bound;
  };
  const Config configs[] = {
      {false, analysis::ConcurrencyBound::kMaxAffectingForks,
       analysis::InterferenceBound::kPaperCeil},
      {false, analysis::ConcurrencyBound::kMaxAffectingForks,
       analysis::InterferenceBound::kMelaniCarryIn},
      {true, analysis::ConcurrencyBound::kMaxAffectingForks,
       analysis::InterferenceBound::kPaperCeil},
      {true, analysis::ConcurrencyBound::kMaxAffectingForks,
       analysis::InterferenceBound::kMelaniCarryIn},
      {true, analysis::ConcurrencyBound::kMaxAntichain,
       analysis::InterferenceBound::kPaperCeil},
      {true, analysis::ConcurrencyBound::kMaxAntichain,
       analysis::InterferenceBound::kMelaniCarryIn},
  };
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    for (double u : {0.3, 0.45}) {
      const TaskSet ts = fig2_set(seed, u);
      for (const Config& c : configs) {
        analysis::GlobalRtaOptions opts;
        opts.limited_concurrency = c.limited;
        opts.concurrency = c.conc;
        opts.bound = c.bound;
        const analysis::GlobalRtaResult legacy = analysis::analyze_global(ts, opts);
        const Analyzer& a = analysis::analyzer_for(opts);
        const Report rep = a.analyze(ts);

        EXPECT_EQ(rep.analyzer, a.name());
        EXPECT_EQ(rep.schedulable, legacy.schedulable);
        ASSERT_EQ(rep.per_task.size(), legacy.per_task.size());
        for (std::size_t i = 0; i < ts.size(); ++i) {
          // Bit-identical, not approximately equal: the adapter calls the
          // very same kernel with the very same options.
          EXPECT_EQ(rep.per_task[i].response_time,
                    legacy.per_task[i].response_time);
          EXPECT_EQ(rep.per_task[i].schedulable, legacy.per_task[i].schedulable);
          EXPECT_EQ(rep.per_task[i].concurrency_bound,
                    legacy.per_task[i].concurrency_bound);
        }
      }
    }
  }
}

TEST(AnalyzerGoldenTest, PartitionedFamilyBitIdentical) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const TaskSet ts = fig2_set(seed, 0.175);
    struct Variant {
      const char* name;
      bool algorithm1;
      bool require_deadlock_free;
      analysis::PartitionedBound bound;
    };
    const Variant variants[] = {
        {"partitioned-baseline", false, false,
         analysis::PartitionedBound::kSplitPerSegment},
        {"partitioned-baseline-holistic", false, false,
         analysis::PartitionedBound::kHolisticPath},
        {"partitioned-proposed", true, true,
         analysis::PartitionedBound::kSplitPerSegment},
        {"partitioned-proposed-holistic", true, true,
         analysis::PartitionedBound::kHolisticPath},
    };
    for (const Variant& v : variants) {
      const Analyzer& a = analysis::get_analyzer(v.name);
      const auto part = v.algorithm1 ? analysis::partition_algorithm1(ts)
                                     : analysis::partition_worst_fit(ts);
      const auto own = a.make_partition(ts);
      ASSERT_EQ(own.success(), part.success()) << v.name;
      const Report rep = a.analyze(ts);  // runs its own partitioner
      if (!part.success()) {
        EXPECT_FALSE(rep.schedulable);
        continue;
      }

      analysis::PartitionedRtaOptions opts;
      opts.require_deadlock_free = v.require_deadlock_free;
      opts.bound = v.bound;
      const analysis::PartitionedRtaResult legacy =
          analysis::analyze_partitioned(ts, *part.partition, opts);

      // Explicit-partition envelope path must agree with the implicit one.
      RtaContext ctx(ts);
      AnalyzerOptions envelope;
      envelope.partition = &*part.partition;
      const Report explicit_rep = a.analyze(ts, ctx, envelope);

      for (const Report* rp : {&rep, &explicit_rep}) {
        EXPECT_EQ(rp->schedulable, legacy.schedulable) << v.name;
        ASSERT_EQ(rp->per_task.size(), legacy.per_task.size());
        for (std::size_t i = 0; i < ts.size(); ++i) {
          EXPECT_EQ(rp->per_task[i].response_time,
                    legacy.per_task[i].response_time);
          EXPECT_EQ(rp->per_task[i].schedulable, legacy.per_task[i].schedulable);
          EXPECT_EQ(rp->per_task[i].deadlock_free,
                    legacy.per_task[i].deadlock_free);
        }
      }
    }
  }
}

TEST(AnalyzerGoldenTest, FederatedFamilyBitIdentical) {
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    const TaskSet ts = fig2_set(seed, 0.3);
    for (bool limited : {false, true}) {
      analysis::FederatedOptions opts;
      opts.limited_concurrency = limited;
      const analysis::FederatedResult legacy = analysis::analyze_federated(ts, opts);
      const Report rep = analysis::analyzer_for(opts).analyze(ts);

      EXPECT_EQ(rep.schedulable, legacy.schedulable);
      EXPECT_EQ(rep.dedicated_cores, legacy.dedicated_cores);
      ASSERT_EQ(rep.per_task.size(), legacy.per_task.size());
      for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_EQ(rep.per_task[i].schedulable, legacy.per_task[i].schedulable);
        EXPECT_EQ(rep.per_task[i].dedicated, legacy.per_task[i].dedicated);
        EXPECT_EQ(rep.per_task[i].dedicated_cores, legacy.per_task[i].cores);
        // Federated computes no response times.
        EXPECT_EQ(rep.per_task[i].response_time, util::kTimeInfinity);
      }
    }
  }
}

TEST(AnalyzerGoldenTest, WcetScaleMatchesKernelScale) {
  const TaskSet ts = fig2_set(41, 0.3);
  analysis::GlobalRtaOptions gopts;
  gopts.limited_concurrency = true;
  gopts.wcet_scale = 0.6;
  const analysis::GlobalRtaResult legacy = analysis::analyze_global(ts, gopts);

  AnalyzerOptions envelope;
  envelope.wcet_scale = 0.6;
  const Report rep =
      analysis::get_analyzer("global-limited").analyze(ts, envelope);
  EXPECT_EQ(rep.schedulable, legacy.schedulable);
  for (std::size_t i = 0; i < ts.size(); ++i)
    EXPECT_EQ(rep.per_task[i].response_time, legacy.per_task[i].response_time);
}

TEST(AnalyzerReportTest, LimitingTaskSemantics) {
  // Plain fork-join on m = 2: R = len + (vol - len)/2 = 8 (test_global_rta).
  TaskSet tight(2);
  tight.add(model::make_fork_join_task("t", 3, 2.0, 7.0, false));
  const Report miss = analysis::get_analyzer("global-baseline").analyze(tight);
  EXPECT_FALSE(miss.schedulable);
  ASSERT_TRUE(miss.limiting_task.has_value());
  EXPECT_EQ(*miss.limiting_task, 0u);
  EXPECT_NEAR(miss.limiting_ratio, 8.0 / 7.0, 1e-9);

  TaskSet slack(2);
  slack.add(model::make_fork_join_task("t", 3, 2.0, 60.0, false));
  const Report ok = analysis::get_analyzer("global-baseline").analyze(slack);
  EXPECT_TRUE(ok.schedulable);
  ASSERT_TRUE(ok.limiting_task.has_value());
  EXPECT_EQ(*ok.limiting_task, 0u);
  EXPECT_NEAR(ok.limiting_ratio, 8.0 / 60.0, 1e-9);
}

// ---- exp layer: enum alias and pair entry points ----

TEST(SchedulerAliasTest, ParseAndName) {
  EXPECT_EQ(exp::parse_scheduler("global"), exp::Scheduler::kGlobal);
  EXPECT_EQ(exp::parse_scheduler("partitioned"), exp::Scheduler::kPartitioned);
  EXPECT_EQ(exp::scheduler_name(exp::Scheduler::kGlobal), "global");
  EXPECT_EQ(exp::scheduler_name(exp::Scheduler::kPartitioned), "partitioned");
  try {
    exp::parse_scheduler("fair");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("global"), std::string::npos);
    EXPECT_NE(what.find("partitioned"), std::string::npos);
  }
}

TEST(SchedulerAliasTest, AnalyzersForPairs) {
  const exp::AnalyzerPair g = exp::analyzers_for(exp::Scheduler::kGlobal);
  ASSERT_NE(g.baseline, nullptr);
  ASSERT_NE(g.proposed, nullptr);
  EXPECT_EQ(g.baseline->name(), "global-baseline");
  EXPECT_EQ(g.proposed->name(), "global-limited");

  const exp::AnalyzerPair p = exp::analyzers_for(exp::Scheduler::kPartitioned);
  EXPECT_EQ(p.baseline->name(), "partitioned-baseline");
  EXPECT_EQ(p.proposed->name(), "partitioned-proposed");
}

TEST(SchedulerAliasTest, PairMatchesEnumVerdicts) {
  for (std::uint64_t seed : {51u, 52u}) {
    for (const auto scheduler :
         {exp::Scheduler::kGlobal, exp::Scheduler::kPartitioned}) {
      const TaskSet ts = fig2_set(
          seed, scheduler == exp::Scheduler::kGlobal ? 0.3 : 0.175);
      const exp::SetVerdict via_enum = exp::evaluate_task_set(scheduler, ts);
      const exp::SetVerdict via_pair =
          exp::evaluate_task_set(exp::analyzers_for(scheduler), ts);
      EXPECT_EQ(via_enum, via_pair);
    }
  }
}

TEST(SchedulerAliasTest, PairMatchesEnumPointResult) {
  exp::PointConfig config;
  config.gen.cores = 8;
  config.gen.task_count = 4;
  config.gen.total_utilization = 0.3 * 8.0;
  config.trials = 20;
  config.max_attempts = 2000;

  exp::ExperimentEngine engine(1);
  const util::Rng rng(97);
  for (const auto scheduler :
       {exp::Scheduler::kGlobal, exp::Scheduler::kPartitioned}) {
    const exp::PointResult via_enum =
        engine.evaluate_point(scheduler, config, rng);
    const exp::PointResult via_pair =
        engine.evaluate_point(exp::analyzers_for(scheduler), config, rng);
    EXPECT_EQ(via_enum, via_pair);
    EXPECT_EQ(via_enum.accepted, 20u);
  }
}

// ---- sensitivity: generic driver vs legacy per-family wrappers ----

TEST(AnalyzerSensitivityTest, GenericMatchesLegacyWrappers) {
  const TaskSet ts = fig2_set(61, 0.3);

  analysis::GlobalRtaOptions gopts;
  gopts.limited_concurrency = true;
  const auto legacy_g = analysis::critical_scaling_factor_global(ts, gopts);
  const auto generic_g =
      analysis::critical_scaling_factor(ts, analysis::analyzer_for(gopts));
  EXPECT_EQ(generic_g.factor, legacy_g.factor);
  EXPECT_EQ(generic_g.probes, legacy_g.probes);

  const auto wf = analysis::partition_worst_fit(ts);
  ASSERT_TRUE(wf.success());
  analysis::PartitionedRtaOptions popts;
  popts.require_deadlock_free = false;
  const auto legacy_p =
      analysis::critical_scaling_factor_partitioned(ts, *wf.partition, popts);
  AnalyzerOptions base;
  base.partition = &*wf.partition;
  const auto generic_p = analysis::critical_scaling_factor(
      ts, analysis::get_analyzer("partitioned-baseline"), base);
  EXPECT_EQ(generic_p.factor, legacy_p.factor);
  EXPECT_EQ(generic_p.probes, legacy_p.probes);

  analysis::FederatedOptions fopts;
  const auto legacy_f = analysis::critical_scaling_factor_federated(ts, fopts);
  const auto generic_f =
      analysis::critical_scaling_factor(ts, analysis::analyzer_for(fopts));
  EXPECT_EQ(generic_f.factor, legacy_f.factor);
}

TEST(AnalyzerSensitivityTest, PartitionOnceForUnpartitionableSet) {
  // No feasible Algorithm-1 partition: the search reports factor 0 with no
  // probes instead of throwing.
  const TaskSet ts = unbindable_set();
  const auto r = analysis::critical_scaling_factor(
      ts, analysis::get_analyzer("partitioned-proposed"));
  EXPECT_EQ(r.factor, 0.0);
  EXPECT_EQ(r.probes, 0);
}

// ---- degenerate inputs across every registered analyzer ----

TEST(AnalyzerDegenerateTest, EmptyTaskSet) {
  const TaskSet ts(4);
  for (const Analyzer* a : analysis::registered_analyzers()) {
    Report rep;
    AnalyzerOptions opts;
    opts.diagnostics = true;
    ASSERT_NO_THROW(rep = a->analyze(ts, opts)) << a->name();
    EXPECT_TRUE(rep.schedulable) << a->name();  // vacuously schedulable
    EXPECT_TRUE(rep.per_task.empty()) << a->name();
    EXPECT_FALSE(rep.limiting_task.has_value()) << a->name();
  }
}

TEST(AnalyzerDegenerateTest, SingleNodeDag) {
  TaskSet ts(4);
  DagTaskBuilder b("solo");
  b.add_node(1.0);
  b.period(1000.0);
  ts.add(b.build());

  for (const Analyzer* a : analysis::registered_analyzers()) {
    Report rep;
    ASSERT_NO_THROW(rep = a->analyze(ts)) << a->name();
    EXPECT_TRUE(rep.schedulable) << a->name();
    ASSERT_EQ(rep.per_task.size(), 1u) << a->name();
    EXPECT_TRUE(rep.per_task[0].schedulable) << a->name();
    if (a->capabilities().reports_response_times) {
      EXPECT_LE(rep.per_task[0].response_time, 1000.0) << a->name();
    }
  }
}

TEST(AnalyzerDegenerateTest, UnbindablePartitionIsACleanVerdict) {
  const TaskSet ts = unbindable_set();
  for (const Analyzer* a : analysis::registered_analyzers()) {
    Report rep;
    AnalyzerOptions opts;
    opts.diagnostics = true;
    ASSERT_NO_THROW(rep = a->analyze(ts, opts)) << a->name();
    EXPECT_EQ(rep.per_task.size(), ts.size()) << a->name();
  }

  // Algorithm 1 specifically: partition failure surfaces as an
  // unschedulable Report with a witness note, never a throw.
  const Analyzer& proposed = analysis::get_analyzer("partitioned-proposed");
  EXPECT_FALSE(proposed.make_partition(ts).success());
  AnalyzerOptions opts;
  opts.diagnostics = true;
  const Report rep = proposed.analyze(ts, opts);
  EXPECT_FALSE(rep.schedulable);
  ASSERT_FALSE(rep.notes.empty());
  EXPECT_EQ(rep.notes[0].code, "partition-failure");
}

TEST(AnalyzerDegenerateTest, MakePartitionOnNonPartitionAnalyzers) {
  const TaskSet ts = fig2_set(71, 0.3);
  for (const Analyzer* a : analysis::registered_analyzers()) {
    if (a->capabilities().uses_partition) continue;
    const auto part = a->make_partition(ts);
    EXPECT_FALSE(part.success()) << a->name();
    EXPECT_FALSE(part.failure.empty()) << a->name();
  }
}

}  // namespace
}  // namespace rtpool
