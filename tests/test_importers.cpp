// Unit tests for the importer-backed constructors (gen/importers.h), the
// heterogeneous WCET distributions (gen/nfj_generator.h) and the corpus
// scenario space (gen/scenario_space.h).
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/concurrency.h"
#include "gen/importers.h"
#include "gen/nfj_generator.h"
#include "gen/scenario_space.h"
#include "gen/topologies.h"
#include "model/io.h"
#include "util/rng.h"

namespace rtpool::gen {
namespace {

// ---------------------------------------------------------------------------
// Importers
// ---------------------------------------------------------------------------

TEST(ImportDnnTest, DefaultsReproduceTopologyBuild) {
  // The importer's default spec must be bit-identical to the historical
  // examples/dnn_inference.cpp construction (same stream, same graph).
  util::Rng a(2019);
  const importers::DnnInferenceSpec spec;
  const model::DagTask imported = importers::import_dnn_inference(spec, a);

  util::Rng b(2019);
  TopologyOptions options;
  options.blocking = true;
  options.period = 400.0;
  options.wcet_min = 0.3;
  options.wcet_max = 2.0;
  const model::DagTask direct = make_dnn_task("inception_like", 6, 3, 8,
                                              options, b);
  EXPECT_EQ(imported.node_count(), direct.node_count());
  EXPECT_DOUBLE_EQ(imported.volume(), direct.volume());
  EXPECT_DOUBLE_EQ(imported.critical_path_length(),
                   direct.critical_path_length());
  // The caller's stream advanced identically.
  EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(ImportDnnTest, BbarEqualsOpsPerLayer) {
  util::Rng rng(5);
  importers::DnnInferenceSpec spec;
  spec.layers = 4;
  spec.ops_per_layer = 5;
  spec.tiles = 3;
  const model::DagTask task = importers::import_dnn_inference(spec, rng);
  // Layer barriers serialize layers; operators within a layer are the only
  // concurrent blocking regions.
  EXPECT_EQ(analysis::max_affecting_forks(task), 5u);
}

TEST(ImportDnnTest, UtilizationTargeting) {
  util::Rng a(11), b(11);
  importers::DnnInferenceSpec plain;
  const model::DagTask reference = importers::import_dnn_inference(plain, a);

  importers::DnnInferenceSpec targeted;
  targeted.utilization = 0.37;
  const model::DagTask task = importers::import_dnn_inference(targeted, b);
  EXPECT_NEAR(task.utilization(), 0.37, 1e-12);
  // Same stream state => identical structure and draws, only the period
  // differs.
  EXPECT_EQ(task.node_count(), reference.node_count());
  EXPECT_DOUBLE_EQ(task.volume(), reference.volume());
  EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(ImportEigenTest, BbarEqualsRows) {
  util::Rng rng(5);
  importers::EigenContractionSpec spec;
  spec.rows = 4;
  spec.tiles = 6;
  const model::DagTask task = importers::import_eigen_contraction(spec, rng);
  // All rows hang off one source: mutually concurrent blocking regions.
  EXPECT_EQ(analysis::max_affecting_forks(task), 4u);
  EXPECT_EQ(task.blocking_fork_count(), 4u);
  // source + sink + rows * (fork + join + tiles)
  EXPECT_EQ(task.node_count(), 2u + 4u * (2u + 6u));
}

TEST(ImportEigenTest, UtilizationTargeting) {
  util::Rng rng(3);
  importers::EigenContractionSpec spec;
  spec.utilization = 0.5;
  const model::DagTask task = importers::import_eigen_contraction(spec, rng);
  EXPECT_NEAR(task.utilization(), 0.5, 1e-12);
}

TEST(ImportTest, InvalidSpecsThrow) {
  util::Rng rng(1);
  importers::DnnInferenceSpec dnn;
  dnn.layers = 0;
  EXPECT_THROW(importers::import_dnn_inference(dnn, rng),
               std::invalid_argument);
  importers::EigenContractionSpec eigen;
  eigen.wcet_min = -1.0;
  EXPECT_THROW(importers::import_eigen_contraction(eigen, rng),
               std::invalid_argument);
}

TEST(ImportTest, TaskSetRoundTripIsCanonical) {
  util::Rng rng(77);
  model::TaskSet ts(6);
  importers::DnnInferenceSpec dnn;
  dnn.layers = 2;
  dnn.ops_per_layer = 2;
  dnn.tiles = 3;
  ts.add(importers::import_dnn_inference(dnn, rng));
  importers::EigenContractionSpec eigen;
  eigen.rows = 2;
  eigen.tiles = 4;
  ts.add(importers::import_eigen_contraction(eigen, rng));

  std::ostringstream first;
  model::write_task_set(first, ts);
  std::istringstream in(first.str());
  const model::TaskSet back = model::read_task_set(in);
  ASSERT_EQ(back.size(), ts.size());
  EXPECT_DOUBLE_EQ(back.task(0).volume(), ts.task(0).volume());
  EXPECT_DOUBLE_EQ(back.task(1).period(), ts.task(1).period());
  // Canonical: re-serialization is byte-identical (the witness-bundle
  // embedding contract).
  std::ostringstream second;
  model::write_task_set(second, back);
  EXPECT_EQ(first.str(), second.str());
}

// ---------------------------------------------------------------------------
// WCET distributions
// ---------------------------------------------------------------------------

TEST(WcetDistTest, NamesRoundTrip) {
  for (const WcetDist dist : {WcetDist::kUniform, WcetDist::kBimodal,
                              WcetDist::kExponential, WcetDist::kHeavyTail})
    EXPECT_EQ(parse_wcet_dist(to_string(dist)), dist);
  EXPECT_THROW(parse_wcet_dist("gaussian"), std::invalid_argument);
}

TEST(WcetDistTest, UniformIsBitIdenticalToHistoricalStream) {
  // kUniform must reproduce the pre-WcetDist generator exactly, so every
  // recorded seed stays valid.
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(draw_wcet(WcetDist::kUniform, 2.0, 9.0, a),
                     b.uniform(2.0, 9.0));
}

TEST(WcetDistTest, AllDistributionsRespectBounds) {
  util::Rng rng(99);
  for (const WcetDist dist : {WcetDist::kUniform, WcetDist::kBimodal,
                              WcetDist::kExponential, WcetDist::kHeavyTail}) {
    double lo = 1e300, hi = -1e300;
    for (int i = 0; i < 2000; ++i) {
      const double w = draw_wcet(dist, 0.5, 8.0, rng);
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
    EXPECT_GE(lo, 0.5) << to_string(dist);
    EXPECT_LE(hi, 8.0) << to_string(dist);
  }
}

TEST(WcetDistTest, BimodalIsActuallyBimodal) {
  util::Rng rng(7);
  int heavy = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i)
    if (draw_wcet(WcetDist::kBimodal, 0.0, 10.0, rng) > 5.0) ++heavy;
  // ~20% of draws land in the top fifth; the rest in the bottom fifth.
  EXPECT_GT(heavy, n / 10);
  EXPECT_LT(heavy, n / 3);
}

// ---------------------------------------------------------------------------
// ScenarioSpace
// ---------------------------------------------------------------------------

TEST(ScenarioSpaceTest, PickIsRoundRobinByAbsoluteSeed) {
  const ScenarioSpace space = ScenarioSpace::corpus_default();
  ASSERT_GT(space.size(), 0u);
  for (std::uint64_t seed = 0; seed < 3 * space.size(); ++seed)
    EXPECT_EQ(space.pick_index(seed), seed % space.size());
  EXPECT_THROW(ScenarioSpace().pick(0), std::logic_error);
}

TEST(ScenarioSpaceTest, DefaultMixGeneratesValidSets) {
  const ScenarioSpace space = ScenarioSpace::corpus_default();
  util::Rng rng(2026);
  for (std::size_t i = 0; i < space.size(); ++i) {
    util::Rng srng = rng.fork_with(i);
    const model::TaskSet ts = space.scenario(i).make(8, srng);
    EXPECT_GT(ts.size(), 0u) << space.scenario(i).name;
    EXPECT_EQ(ts.core_count(), 8u) << space.scenario(i).name;
    for (std::size_t t = 0; t < ts.size(); ++t)
      EXPECT_GT(ts.task(t).period(), 0.0) << space.scenario(i).name;
  }
}

TEST(ScenarioSpaceTest, ReproducibleForSameSeed) {
  const ScenarioSpace space = ScenarioSpace::corpus_default();
  const util::Rng root(1);
  for (std::size_t i = 0; i < space.size(); ++i) {
    util::Rng a = root.fork_with(1000 + i);
    util::Rng b = root.fork_with(1000 + i);
    const model::TaskSet first = space.scenario(i).make(8, a);
    const model::TaskSet second = space.scenario(i).make(8, b);
    std::ostringstream sa, sb;
    model::write_task_set(sa, first);
    model::write_task_set(sb, second);
    EXPECT_EQ(sa.str(), sb.str()) << space.scenario(i).name;
  }
}

TEST(ScenarioSpaceTest, FilterAndFingerprint) {
  ScenarioSpace space = ScenarioSpace::corpus_default();
  const std::string full = space.fingerprint();
  const std::size_t kept = space.filter("import");
  EXPECT_GT(kept, 0u);
  EXPECT_EQ(kept, space.size());
  EXPECT_NE(space.fingerprint(), full);
  for (std::size_t i = 0; i < space.size(); ++i)
    EXPECT_NE(space.scenario(i).name.find("import"), std::string::npos);
}

}  // namespace
}  // namespace rtpool::gen
