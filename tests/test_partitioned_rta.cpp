// Unit tests for the partitioned segment-based (SPLIT-style) RTA of
// Section 4.2.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/partition.h"
#include "analysis/partitioned_rta.h"
#include "gen/taskset_generator.h"
#include "model/builder.h"

namespace rtpool::analysis {
namespace {

using model::DagTask;
using model::DagTaskBuilder;
using model::NodeId;
using model::TaskSet;

TEST(PartitionedRtaTest, ChainOnOneCore) {
  // src(1) -> a(2) -> b(3): all on core 0, no interference: R = 6.
  DagTaskBuilder b("chain");
  const NodeId n0 = b.add_node(1.0);
  const NodeId n1 = b.add_node(2.0);
  const NodeId n2 = b.add_node(3.0);
  b.add_edge(n0, n1);
  b.add_edge(n1, n2);
  b.period(50.0);
  TaskSet ts(1);
  ts.add(b.build());

  TaskSetPartition partition;
  partition.per_task.push_back({std::vector<ThreadId>(3, 0)});
  const auto result = analyze_partitioned(ts, partition);
  ASSERT_TRUE(result.schedulable);
  EXPECT_NEAR(result.per_task[0].response_time, 6.0, 1e-9);
}

TEST(PartitionedRtaTest, FifoBlockingOnSharedCore) {
  // Fork-join with 2 parallel children, everything on one core:
  // each child's segment includes the other child as FIFO blocking, so the
  // longest path degenerates to the full volume.
  TaskSet ts(1);
  ts.add(model::make_fork_join_task("t", 2, 1.0, 50.0, false));
  TaskSetPartition partition;
  partition.per_task.push_back(
      {std::vector<ThreadId>(ts.task(0).node_count(), 0)});
  const auto result = analyze_partitioned(ts, partition);
  ASSERT_TRUE(result.schedulable);
  // path: fork(1) + child(1 + 1 blocking) + join(1) = 4 = volume.
  EXPECT_NEAR(result.per_task[0].response_time, 4.0, 1e-9);
}

TEST(PartitionedRtaTest, ParallelChildrenOnSeparateCores) {
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 2, 1.0, 50.0, false));
  const DagTask& t = ts.task(0);
  // fork/join on core 0, children split across cores 0 and 1.
  std::vector<ThreadId> asg(t.node_count(), 0);
  // make_fork_join_task builds: fork=0, join=1, children=2,3.
  asg[3] = 1;
  TaskSetPartition partition;
  partition.per_task.push_back({asg});
  const auto result = analyze_partitioned(ts, partition);
  ASSERT_TRUE(result.schedulable);
  // No two concurrent nodes share a core: R = len = 3.
  EXPECT_NEAR(result.per_task[0].response_time, 3.0, 1e-9);
}

TEST(PartitionedRtaTest, HigherPriorityInterferencePerCore) {
  // hp: one node C=2 T=10 on core 0. lp: one node C=3 T=50 on core 0.
  // lp segment: x = 3 + ceil((x + J)/10)*2 with J = R_hp - W = 0.
  TaskSet ts(2);
  {
    DagTaskBuilder b("hp");
    b.add_node(2.0);
    b.period(10.0).priority(0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("lp");
    b.add_node(3.0);
    b.period(50.0).priority(1);
    ts.add(b.build());
  }
  TaskSetPartition partition;
  partition.per_task.push_back({std::vector<ThreadId>{0}});
  partition.per_task.push_back({std::vector<ThreadId>{0}});
  const auto result = analyze_partitioned(ts, partition);
  ASSERT_TRUE(result.schedulable);
  EXPECT_NEAR(result.per_task[0].response_time, 2.0, 1e-9);
  EXPECT_NEAR(result.per_task[1].response_time, 5.0, 1e-9);

  // Same tasks on different cores: no interference at all.
  partition.per_task[1].thread_of[0] = 1;
  const auto isolated = analyze_partitioned(ts, partition);
  EXPECT_NEAR(isolated.per_task[1].response_time, 3.0, 1e-9);
}

TEST(PartitionedRtaTest, DeadlockGateControlsVerdict) {
  // A blocking region entirely on one thread: Eq. (3) is violated.
  DagTaskBuilder b("region");
  const NodeId pre = b.add_node(1.0);
  const auto fj = b.add_blocking_fork_join(1.0, 1.0, {1.0, 1.0});
  b.add_edge(pre, fj.fork);
  b.period(100.0);
  TaskSet ts(2);
  ts.add(b.build());

  TaskSetPartition partition;
  partition.per_task.push_back(
      {std::vector<ThreadId>(ts.task(0).node_count(), 0)});

  PartitionedRtaOptions strict;
  strict.require_deadlock_free = true;
  const auto gated = analyze_partitioned(ts, partition, strict);
  EXPECT_FALSE(gated.schedulable);
  EXPECT_FALSE(gated.per_task[0].deadlock_free);

  PartitionedRtaOptions oblivious;
  oblivious.require_deadlock_free = false;
  const auto open = analyze_partitioned(ts, partition, oblivious);
  EXPECT_TRUE(open.schedulable);  // the unsafe baseline verdict
  EXPECT_FALSE(open.per_task[0].deadlock_free);
}

TEST(PartitionedRtaTest, OverloadedCoreDiverges) {
  TaskSet ts(1);
  {
    DagTaskBuilder b("hp");
    b.add_node(10.0);
    b.period(10.0).priority(0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("lp");
    b.add_node(1.0);
    b.period(100.0).priority(1);
    ts.add(b.build());
  }
  TaskSetPartition partition;
  partition.per_task.push_back({std::vector<ThreadId>{0}});
  partition.per_task.push_back({std::vector<ThreadId>{0}});
  const auto result = analyze_partitioned(ts, partition);
  EXPECT_FALSE(result.schedulable);
  EXPECT_TRUE(result.per_task[0].schedulable);
  EXPECT_FALSE(result.per_task[1].schedulable);
}

TEST(PartitionedRtaTest, InputValidation) {
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 2, 1.0, 50.0, false));
  TaskSetPartition empty;
  EXPECT_THROW(analyze_partitioned(ts, empty), model::ModelError);

  TaskSetPartition short_assignment;
  short_assignment.per_task.push_back({std::vector<ThreadId>{0}});
  EXPECT_THROW(analyze_partitioned(ts, short_assignment), model::ModelError);

  // Thread ids beyond the core count are rejected up front (the hot loops
  // index raw vectors afterwards).
  TaskSetPartition out_of_range;
  out_of_range.per_task.push_back(
      {std::vector<ThreadId>(ts.task(0).node_count(), 2)});  // m = 2 -> max 1
  EXPECT_THROW(analyze_partitioned(ts, out_of_range), model::ModelError);
}

TEST(PartitionedRtaTest, PublicKernelsMatchHandComputedValues) {
  // Fork-join (fork=0, join=1, children=2,3, all C=1), children on core 1,
  // fork/join on core 0, m = 2.
  TaskSet ts(2);
  ts.add(model::make_fork_join_task("t", 2, 1.0, 50.0, false));
  NodeAssignment a;
  a.thread_of = {0, 0, 1, 1};

  const auto w = per_core_workload_vector(ts.task(0), a, 2);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0], 2.0, 1e-12);  // fork + join
  EXPECT_NEAR(w[1], 2.0, 1e-12);  // both children

  const auto b = fifo_blocking_vector(ts.task(0), a);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_NEAR(b[0], 0.0, 1e-12);  // fork: ordered with everything
  EXPECT_NEAR(b[1], 0.0, 1e-12);  // join: ordered with everything
  EXPECT_NEAR(b[2], 1.0, 1e-12);  // child blocked by its sibling
  EXPECT_NEAR(b[3], 1.0, 1e-12);

  // Siblings on different cores never block each other.
  a.thread_of = {0, 0, 0, 1};
  const auto b2 = fifo_blocking_vector(ts.task(0), a);
  EXPECT_NEAR(b2[2], 0.0, 1e-12);
  EXPECT_NEAR(b2[3], 0.0, 1e-12);

  EXPECT_THROW(per_core_workload_vector(ts.task(0), a, 1), model::ModelError);
  NodeAssignment bad;
  bad.thread_of = {0};
  EXPECT_THROW(fifo_blocking_vector(ts.task(0), bad), model::ModelError);
}

TEST(PartitionedRtaTest, HolisticBoundNoHpMatchesSplitBase) {
  // Without higher-priority tasks both bounds reduce to the same
  // B_v-weighted longest path.
  TaskSet ts(1);
  ts.add(model::make_fork_join_task("t", 2, 1.0, 50.0, false));
  TaskSetPartition partition;
  partition.per_task.push_back(
      {std::vector<ThreadId>(ts.task(0).node_count(), 0)});

  PartitionedRtaOptions split;
  PartitionedRtaOptions holistic;
  holistic.bound = PartitionedBound::kHolisticPath;
  const auto a = analyze_partitioned(ts, partition, split);
  const auto b = analyze_partitioned(ts, partition, holistic);
  EXPECT_NEAR(a.per_task[0].response_time, b.per_task[0].response_time, 1e-9);
}

TEST(PartitionedRtaTest, HolisticChargesInterferenceOncePerCore) {
  // lp is a 3-node chain on core 0; hp has one node (C=2, T=10) there.
  // Split charges the hp task once per segment (3x); holistic once.
  TaskSet ts(1);
  {
    DagTaskBuilder b("hp");
    b.add_node(2.0);
    b.period(10.0).priority(0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("lp");
    const NodeId n0 = b.add_node(1.0);
    const NodeId n1 = b.add_node(1.0);
    const NodeId n2 = b.add_node(1.0);
    b.add_edge(n0, n1);
    b.add_edge(n1, n2);
    b.period(40.0).priority(1);
    ts.add(b.build());
  }
  TaskSetPartition partition;
  partition.per_task.push_back({std::vector<ThreadId>{0}});
  partition.per_task.push_back({std::vector<ThreadId>(3, 0)});

  PartitionedRtaOptions split;
  const auto a = analyze_partitioned(ts, partition, split);
  // Each segment: x = 1 + ceil(x/10)*2 -> 3; path = 9.
  EXPECT_NEAR(a.per_task[1].response_time, 9.0, 1e-9);

  PartitionedRtaOptions holistic;
  holistic.bound = PartitionedBound::kHolisticPath;
  const auto b = analyze_partitioned(ts, partition, holistic);
  // R = 3 + ceil(R/10)*2 -> 5.
  EXPECT_NEAR(b.per_task[1].response_time, 5.0, 1e-9);
}

TEST(PartitionedRtaTest, HolisticCountsOnlyUsedCores) {
  // hp runs on cores 0 and 1, lp only on core 0: the holistic bound must
  // charge hp's core-0 footprint only (cores the task never uses are free).
  TaskSet ts(2);
  {
    DagTaskBuilder b("hp");
    const NodeId f = b.add_node(2.0);
    const NodeId j = b.add_node(2.0);
    const NodeId c = b.add_node(2.0);
    b.add_edge(f, c);
    b.add_edge(c, j);
    b.period(100.0).priority(0);
    ts.add(b.build());
  }
  {
    DagTaskBuilder b("lp");
    b.add_node(1.0);
    b.period(50.0).priority(1);
    ts.add(b.build());
  }
  TaskSetPartition partition;
  partition.per_task.push_back({std::vector<ThreadId>{0, 1, 0}});  // hp on 0+1
  partition.per_task.push_back({std::vector<ThreadId>{0}});        // lp on 0

  PartitionedRtaOptions split;
  const auto a = analyze_partitioned(ts, partition, split);
  // lp only sees hp's core-0 workload (4): R = 1 + 4 = 5.
  EXPECT_NEAR(a.per_task[1].response_time, 5.0, 1e-9);

  PartitionedRtaOptions holistic;
  holistic.bound = PartitionedBound::kHolisticPath;
  const auto b = analyze_partitioned(ts, partition, holistic);
  EXPECT_NEAR(b.per_task[1].response_time, 5.0, 1e-9);  // lp uses core 0 only
}

/// Property sweep: Algorithm 1 partitions are always deadlock-free per the
/// RTA's own gate, and response bounds dominate the critical path length.
class PartitionedRtaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionedRtaPropertyTest, BoundsAreSane) {
  util::Rng rng(GetParam());
  gen::TaskSetParams params;
  params.cores = 8;
  params.task_count = 4;
  params.total_utilization = 2.0;
  const TaskSet ts = gen::generate_task_set(params, rng);

  const auto alg1 = partition_algorithm1(ts);
  if (!alg1.success()) return;
  const auto result = analyze_partitioned(ts, *alg1.partition);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_TRUE(result.per_task[i].deadlock_free ||
                !result.per_task[i].schedulable)
        << "seed=" << GetParam();
    const double r = result.per_task[i].response_time;
    if (std::isfinite(r)) {
      EXPECT_GE(r + 1e-9, ts.task(i).critical_path_length())
          << "seed=" << GetParam() << " task=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionedRtaPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace rtpool::analysis
