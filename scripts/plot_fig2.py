#!/usr/bin/env python3
"""Plot the Figure-2 reproduction CSVs written by the bench binaries.

Usage:
    bench/fig2_lmax --csv fig2_lmax.csv
    bench/fig2_m    --csv fig2_m.csv
    bench/fig2_n    --csv fig2_n.csv
    python3 scripts/plot_fig2.py fig2_lmax.csv fig2_m.csv fig2_n.csv -o fig2.png

Produces one row of paired insets per CSV (global left, partitioned right),
mirroring the layout of Figure 2 in the paper. Requires matplotlib.
"""
import argparse
import csv
import sys


def read_rows(path):
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        rows = list(reader)
    if not rows:
        raise SystemExit(f"{path}: empty CSV")
    x_label = reader.fieldnames[0]
    xs = [float(r[x_label]) for r in rows]
    series = {
        name: [float(r[name]) for r in rows]
        for name in ("global_baseline", "global_proposed",
                     "partitioned_baseline", "partitioned_proposed")
    }
    return x_label, xs, series


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csvs", nargs="+", help="CSV files from the fig2_* benches")
    parser.add_argument("-o", "--output", default="fig2.png")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit("matplotlib is required: pip install matplotlib")

    n = len(args.csvs)
    fig, axes = plt.subplots(n, 2, figsize=(9, 3 * n), squeeze=False)
    for row, path in enumerate(args.csvs):
        x_label, xs, series = read_rows(path)
        for col, (kind, title) in enumerate(
            (("global", "global scheduling"),
             ("partitioned", "partitioned scheduling"))):
            ax = axes[row][col]
            ax.plot(xs, series[f"{kind}_baseline"], "o--", label="baseline")
            ax.plot(xs, series[f"{kind}_proposed"], "s-", label="proposed")
            ax.set_xlabel(x_label)
            ax.set_ylabel("schedulability ratio")
            ax.set_ylim(-0.02, 1.02)
            ax.set_title(f"{path}: {title}", fontsize=9)
            ax.grid(True, alpha=0.3)
            ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(args.output, dpi=150)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    sys.exit(main())
