#!/usr/bin/env python3
"""Merge perf results into one BENCH_analysis.json report.

Inputs (all optional, at least one required):
  --sweep    JSON written by `bench/perf_sweep` (experiment-engine wall
             times, trials/sec, cross-thread determinism verdicts).
  --kernels  JSON written by `bench/perf_analysis
             --benchmark_format=json` (google-benchmark per-kernel timings).
  --serve    JSON written by `bench/perf_serve` (admission-service load
             bench: requests/s, p50/p99, path counters). Folded into the
             report as the `serve` section. ALWAYS gated on correctness:
             any dropped request, error response, verdict mismatch against
             the rtpool_cli-identical reference, or failed mid-run hot
             reload exits 1. The batched+sharded-vs-naive speedup is
             report-only unless --enforce-serve-speedup is set (wall-clock
             ratios are meaningless on shared CI boxes).
  --corpus   Summary JSON written by `rtpool_corpus --summary` (schema
             rtpool-corpus-summary-v1). Folded into the report as the
             `corpus` section. HARD GATE: any safety violation (a sound
             analyzer accepting a set the simulator drives into a miss or
             deadlock) or an incomplete range exits 1 — unlike wall-clock
             numbers, the safety direction is load-independent and must
             hold on any machine.
  --baseline Committed BENCH_analysis.json to diff against. REPORT-ONLY:
             per-point trials/s and per-kernel timing deltas are printed
             and recorded under `baseline_diff`, but never affect the exit
             status (wall-time asserts are meaningless on shared CI boxes).

Thread-scaling gate: every sweep point is checked for multi-thread runs
slower than the same point's threads=1 run; regressions are printed as
warnings and recorded under `thread_scaling_regressions`. Report-only by
default — pass --enforce-thread-scaling to turn regressions into exit 1
(meant for dedicated perf boxes, not shared CI runners).

Output (--out, default BENCH_analysis.json): the sweep report with a
`kernels` section appended:

  "kernels": [{"name": "BM_Algorithm1/8", "time_ns": ..., "cpu_ns": ...,
               "iterations": ...}, ...]

Standard library only; no third-party dependencies.
"""

import argparse
import json
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def extract_kernels(gbench):
    """Per-kernel rows from a google-benchmark JSON document."""
    kernels = []
    for row in gbench.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue  # keep raw iterations; aggregates repeat them
        unit = row.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            print(f"bench_report: unknown time unit '{unit}' for "
                  f"{row.get('name')}, skipping", file=sys.stderr)
            continue
        kernels.append({
            "name": row.get("name", "?"),
            "time_ns": row.get("real_time", 0.0) * scale,
            "cpu_ns": row.get("cpu_time", 0.0) * scale,
            "iterations": row.get("iterations", 0),
        })
    return kernels


def point_rates(report):
    """{point name: best trials/s across thread counts} from a report."""
    rates = {}
    for point in report.get("points", []):
        best = 0.0
        for run in point.get("runs", []):
            best = max(best, run.get("trials_per_s", 0.0))
        rates[point.get("name", "?")] = best
    return rates


def kernel_times(report):
    """{kernel name: time_ns} from a report."""
    return {k.get("name", "?"): k.get("time_ns", 0.0)
            for k in report.get("kernels", [])}


def diff_against_baseline(report, baseline):
    """Report-only comparison of the new report against a committed one."""
    diff = {"points": [], "kernels": []}
    old_adm = baseline.get("admission")
    new_adm = report.get("admission")
    if old_adm and new_adm:
        row = {}
        for key in ("incremental_wall_s", "warm_wall_s", "cold_wall_s",
                    "warm_speedup", "incremental_speedup"):
            old = old_adm.get(key, 0.0)
            new = new_adm.get(key, 0.0)
            row[key] = new
            row["baseline_" + key] = old
            if old > 0.0 and new > 0.0:
                print(f"bench_report: admission {key}: {new:.4f} "
                      f"vs baseline {old:.4f} ({old / new:.2f}x)")
        diff["admission"] = row
    old_rates = point_rates(baseline)
    for name, rate in sorted(point_rates(report).items()):
        old = old_rates.get(name)
        if old is None or old <= 0.0 or rate <= 0.0:
            continue
        row = {"name": name, "trials_per_s": rate, "baseline_trials_per_s": old,
               "speedup": rate / old}
        diff["points"].append(row)
        print(f"bench_report: point {name}: {rate:.1f} trials/s "
              f"vs baseline {old:.1f} ({rate / old:.2f}x)")
    old_kernels = kernel_times(baseline)
    for name, t in sorted(kernel_times(report).items()):
        old = old_kernels.get(name)
        if old is None or old <= 0.0 or t <= 0.0:
            continue
        row = {"name": name, "time_ns": t, "baseline_time_ns": old,
               "speedup": old / t}
        diff["kernels"].append(row)
        print(f"bench_report: kernel {name}: {t:.0f} ns "
              f"vs baseline {old:.0f} ({old / t:.2f}x)")
    return diff


def check_thread_scaling(report):
    """Rows for multi-thread runs slower than the point's threads=1 run."""
    regressions = []
    for point in report.get("points", []):
        runs = point.get("runs", [])
        base = next((r for r in runs if r.get("threads") == 1), None)
        if base is None or base.get("wall_s", 0.0) <= 0.0:
            continue
        for run in runs:
            threads = run.get("threads", 1)
            if threads <= 1:
                continue
            wall = run.get("wall_s", 0.0)
            if wall > base["wall_s"]:
                regressions.append({
                    "name": point.get("name", "?"),
                    "threads": threads,
                    "wall_s": wall,
                    "threads1_wall_s": base["wall_s"],
                })
                print(f"bench_report: WARNING point {point.get('name', '?')} "
                      f"threads={threads} wall {wall:.3f}s > threads=1 wall "
                      f"{base['wall_s']:.3f}s", file=sys.stderr)
    return regressions


def check_serve(serve, enforce_speedup, min_speedup):
    """Gate the perf_serve section; list of failure strings (correctness
    failures always gate; the speedup ratio only with enforce_speedup)."""
    failures = []
    if serve.get("dropped_total", 0):
        failures.append(f"{serve['dropped_total']} dropped request(s)")
    if serve.get("errors_total", 0):
        failures.append(f"{serve['errors_total']} error response(s)")
    if serve.get("verdict_mismatches_total", 0):
        failures.append(f"{serve['verdict_mismatches_total']} serve verdict(s) "
                        "differ from the rtpool_cli-identical reference")
    if not serve.get("reload_ok", True):
        failures.append("mid-run hot reload dropped or misrouted requests")
    speedup = serve.get("speedup_batched_sharded_vs_naive", 0.0)
    for run in serve.get("runs", []):
        print(f"bench_report: serve {run.get('name', '?'):<22} "
              f"{run.get('requests_per_s', 0.0):8.1f} req/s  "
              f"p50 {run.get('p50_ms', 0.0):.3f} ms  "
              f"p99 {run.get('p99_ms', 0.0):.3f} ms")
    print(f"bench_report: serve speedup (batched+sharded vs naive) "
          f"{speedup:.2f}x")
    if enforce_speedup and speedup < min_speedup:
        failures.append(f"serve speedup {speedup:.2f}x below the "
                        f"{min_speedup:.1f}x floor with "
                        "--enforce-serve-speedup set")
    return failures


def check_corpus(corpus):
    """Gate the corpus summary; list of failure strings. The safety gate is
    unconditional: violations mean a sound analyzer is optimistic."""
    failures = []
    schema = corpus.get("schema")
    if schema != "rtpool-corpus-summary-v1":
        failures.append(f"unexpected corpus summary schema '{schema}'")
        return failures
    sets = corpus.get("sets", 0)
    violations = corpus.get("safety_violations", 0)
    print(f"bench_report: corpus {sets} sets over seeds "
          f"[{corpus.get('seed_begin', '?')}, {corpus.get('seed_end', '?')}), "
          f"{violations} safety violation(s), "
          f"{corpus.get('generation_errors', 0)} generation error(s)")
    for analyzer in corpus.get("analyzers", []):
        gap = analyzer.get("gap", {})
        print(f"bench_report: corpus {analyzer.get('name', '?'):<34} "
              f"[{analyzer.get('mode', '?'):<6}] "
              f"accept {analyzer.get('analysis_schedulable', 0)} "
              f"optimistic {analyzer.get('optimistic', 0)} "
              f"violations {analyzer.get('safety_violations', 0)} "
              f"gap p50 {gap.get('p50', 0.0):.3f} p99 {gap.get('p99', 0.0):.3f}")
    if violations:
        failures.append(f"{violations} safety violation(s): a sound analyzer "
                        "accepted a set the simulator drove into a miss or "
                        "deadlock")
    if not corpus.get("complete", False):
        failures.append("corpus range incomplete (budget pause or early stop)")
    if sets <= 0:
        failures.append("corpus evaluated zero sets")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sweep", help="perf_sweep JSON report")
    parser.add_argument("--kernels", help="perf_analysis google-benchmark JSON")
    parser.add_argument("--serve", help="perf_serve JSON report")
    parser.add_argument("--enforce-serve-speedup", action="store_true",
                        help="exit 1 when the serve batched+sharded speedup "
                             "over the naive baseline is below "
                             "--min-serve-speedup (default: report-only)")
    parser.add_argument("--min-serve-speedup", type=float, default=3.0,
                        help="speedup floor for --enforce-serve-speedup "
                             "(default 3.0)")
    parser.add_argument("--baseline",
                        help="committed BENCH_analysis.json to diff against "
                             "(report-only, never affects exit status)")
    parser.add_argument("--corpus",
                        help="rtpool_corpus summary JSON "
                             "(rtpool-corpus-summary-v1); hard-gates "
                             "safety_violations == 0 and complete == true")
    parser.add_argument("--out", default="BENCH_analysis.json")
    parser.add_argument("--enforce-thread-scaling", action="store_true",
                        help="exit 1 when a multi-thread run is slower than "
                             "the same point's threads=1 run (default: "
                             "report-only warning)")
    args = parser.parse_args()

    if not args.sweep and not args.kernels and not args.serve \
            and not args.corpus:
        parser.error("need --sweep, --kernels, --serve, and/or --corpus")

    report = {"schema": "rtpool-bench-analysis-v1"}
    if args.sweep:
        report = load_json(args.sweep)

    if args.kernels:
        gbench = load_json(args.kernels)
        report["kernels"] = extract_kernels(gbench)
        context = gbench.get("context", {})
        report["host"] = {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
        }

    serve_failures = []
    if args.serve:
        serve = load_json(args.serve)
        report["serve"] = serve
        serve_failures = check_serve(serve, args.enforce_serve_speedup,
                                     args.min_serve_speedup)

    corpus_failures = []
    if args.corpus:
        corpus = load_json(args.corpus)
        report["corpus"] = corpus
        corpus_failures = check_corpus(corpus)

    if args.baseline:
        try:
            baseline = load_json(args.baseline)
        except (OSError, ValueError) as err:
            print(f"bench_report: cannot read baseline {args.baseline}: {err}",
                  file=sys.stderr)
        else:
            report["baseline_diff"] = diff_against_baseline(report, baseline)

    scaling_regressions = check_thread_scaling(report)
    report["thread_scaling_regressions"] = scaling_regressions

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    points = report.get("points", [])
    if points and not report.get("deterministic_all", True):
        print("bench_report: determinism failure recorded in sweep input",
              file=sys.stderr)
        return 1
    admission = report.get("admission")
    if admission and not admission.get("verdicts_agree", True):
        print("bench_report: admission warm/cold verdict disagreement "
              "recorded in sweep input", file=sys.stderr)
        return 1
    if scaling_regressions and args.enforce_thread_scaling:
        print(f"bench_report: {len(scaling_regressions)} thread-scaling "
              "regression(s) with --enforce-thread-scaling set",
              file=sys.stderr)
        return 1
    if serve_failures:
        for failure in serve_failures:
            print(f"bench_report: serve gate: {failure}", file=sys.stderr)
        return 1
    if corpus_failures:
        for failure in corpus_failures:
            print(f"bench_report: corpus gate: {failure}", file=sys.stderr)
        return 1
    cert_failures = report.get("cert_failures_total", 0)
    if cert_failures:
        print(f"bench_report: {cert_failures} certificate(s) rejected by the "
              "independent checker", file=sys.stderr)
        return 1
    certify_note = ""
    if report.get("certified_total"):
        certify_note = f", {report['certified_total']} certificates checked"
    serve_note = ""
    if report.get("serve"):
        serve_note = f", {len(report['serve'].get('runs', []))} serve runs"
    corpus_note = ""
    if report.get("corpus"):
        corpus_note = (f", corpus {report['corpus'].get('sets', 0)} sets / "
                       f"{report['corpus'].get('safety_violations', 0)} "
                       "violations")
    print(f"bench_report: wrote {args.out} "
          f"({len(points)} points, {len(report.get('kernels', []))} kernels"
          f"{certify_note}{serve_note}{corpus_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
