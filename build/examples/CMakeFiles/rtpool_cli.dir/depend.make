# Empty dependencies file for rtpool_cli.
# This may be replaced when dependencies are built.
