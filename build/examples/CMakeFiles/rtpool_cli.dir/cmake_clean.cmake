file(REMOVE_RECURSE
  "CMakeFiles/rtpool_cli.dir/rtpool_cli.cpp.o"
  "CMakeFiles/rtpool_cli.dir/rtpool_cli.cpp.o.d"
  "rtpool_cli"
  "rtpool_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpool_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
