file(REMOVE_RECURSE
  "CMakeFiles/eigen_style.dir/eigen_style.cpp.o"
  "CMakeFiles/eigen_style.dir/eigen_style.cpp.o.d"
  "eigen_style"
  "eigen_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigen_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
