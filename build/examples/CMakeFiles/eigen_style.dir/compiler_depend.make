# Empty compiler generated dependencies file for eigen_style.
# This may be replaced when dependencies are built.
