file(REMOVE_RECURSE
  "CMakeFiles/rtpool_exp.dir/necessity.cpp.o"
  "CMakeFiles/rtpool_exp.dir/necessity.cpp.o.d"
  "CMakeFiles/rtpool_exp.dir/report.cpp.o"
  "CMakeFiles/rtpool_exp.dir/report.cpp.o.d"
  "CMakeFiles/rtpool_exp.dir/report_json.cpp.o"
  "CMakeFiles/rtpool_exp.dir/report_json.cpp.o.d"
  "CMakeFiles/rtpool_exp.dir/schedulability.cpp.o"
  "CMakeFiles/rtpool_exp.dir/schedulability.cpp.o.d"
  "librtpool_exp.a"
  "librtpool_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpool_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
