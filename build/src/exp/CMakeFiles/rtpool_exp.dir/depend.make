# Empty dependencies file for rtpool_exp.
# This may be replaced when dependencies are built.
