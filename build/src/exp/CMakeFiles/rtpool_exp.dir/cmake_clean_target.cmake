file(REMOVE_RECURSE
  "librtpool_exp.a"
)
