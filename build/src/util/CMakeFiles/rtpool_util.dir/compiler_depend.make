# Empty compiler generated dependencies file for rtpool_util.
# This may be replaced when dependencies are built.
