file(REMOVE_RECURSE
  "CMakeFiles/rtpool_util.dir/args.cpp.o"
  "CMakeFiles/rtpool_util.dir/args.cpp.o.d"
  "CMakeFiles/rtpool_util.dir/bitset.cpp.o"
  "CMakeFiles/rtpool_util.dir/bitset.cpp.o.d"
  "CMakeFiles/rtpool_util.dir/csv.cpp.o"
  "CMakeFiles/rtpool_util.dir/csv.cpp.o.d"
  "CMakeFiles/rtpool_util.dir/json.cpp.o"
  "CMakeFiles/rtpool_util.dir/json.cpp.o.d"
  "CMakeFiles/rtpool_util.dir/rng.cpp.o"
  "CMakeFiles/rtpool_util.dir/rng.cpp.o.d"
  "CMakeFiles/rtpool_util.dir/stats.cpp.o"
  "CMakeFiles/rtpool_util.dir/stats.cpp.o.d"
  "CMakeFiles/rtpool_util.dir/uunifast.cpp.o"
  "CMakeFiles/rtpool_util.dir/uunifast.cpp.o.d"
  "librtpool_util.a"
  "librtpool_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpool_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
