file(REMOVE_RECURSE
  "librtpool_util.a"
)
