
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/antichain.cpp" "src/analysis/CMakeFiles/rtpool_analysis.dir/antichain.cpp.o" "gcc" "src/analysis/CMakeFiles/rtpool_analysis.dir/antichain.cpp.o.d"
  "/root/repo/src/analysis/concurrency.cpp" "src/analysis/CMakeFiles/rtpool_analysis.dir/concurrency.cpp.o" "gcc" "src/analysis/CMakeFiles/rtpool_analysis.dir/concurrency.cpp.o.d"
  "/root/repo/src/analysis/deadlock.cpp" "src/analysis/CMakeFiles/rtpool_analysis.dir/deadlock.cpp.o" "gcc" "src/analysis/CMakeFiles/rtpool_analysis.dir/deadlock.cpp.o.d"
  "/root/repo/src/analysis/federated.cpp" "src/analysis/CMakeFiles/rtpool_analysis.dir/federated.cpp.o" "gcc" "src/analysis/CMakeFiles/rtpool_analysis.dir/federated.cpp.o.d"
  "/root/repo/src/analysis/global_rta.cpp" "src/analysis/CMakeFiles/rtpool_analysis.dir/global_rta.cpp.o" "gcc" "src/analysis/CMakeFiles/rtpool_analysis.dir/global_rta.cpp.o.d"
  "/root/repo/src/analysis/partition.cpp" "src/analysis/CMakeFiles/rtpool_analysis.dir/partition.cpp.o" "gcc" "src/analysis/CMakeFiles/rtpool_analysis.dir/partition.cpp.o.d"
  "/root/repo/src/analysis/partitioned_rta.cpp" "src/analysis/CMakeFiles/rtpool_analysis.dir/partitioned_rta.cpp.o" "gcc" "src/analysis/CMakeFiles/rtpool_analysis.dir/partitioned_rta.cpp.o.d"
  "/root/repo/src/analysis/priority_assignment.cpp" "src/analysis/CMakeFiles/rtpool_analysis.dir/priority_assignment.cpp.o" "gcc" "src/analysis/CMakeFiles/rtpool_analysis.dir/priority_assignment.cpp.o.d"
  "/root/repo/src/analysis/sensitivity.cpp" "src/analysis/CMakeFiles/rtpool_analysis.dir/sensitivity.cpp.o" "gcc" "src/analysis/CMakeFiles/rtpool_analysis.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/rtpool_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rtpool_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtpool_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
