file(REMOVE_RECURSE
  "CMakeFiles/rtpool_analysis.dir/antichain.cpp.o"
  "CMakeFiles/rtpool_analysis.dir/antichain.cpp.o.d"
  "CMakeFiles/rtpool_analysis.dir/concurrency.cpp.o"
  "CMakeFiles/rtpool_analysis.dir/concurrency.cpp.o.d"
  "CMakeFiles/rtpool_analysis.dir/deadlock.cpp.o"
  "CMakeFiles/rtpool_analysis.dir/deadlock.cpp.o.d"
  "CMakeFiles/rtpool_analysis.dir/federated.cpp.o"
  "CMakeFiles/rtpool_analysis.dir/federated.cpp.o.d"
  "CMakeFiles/rtpool_analysis.dir/global_rta.cpp.o"
  "CMakeFiles/rtpool_analysis.dir/global_rta.cpp.o.d"
  "CMakeFiles/rtpool_analysis.dir/partition.cpp.o"
  "CMakeFiles/rtpool_analysis.dir/partition.cpp.o.d"
  "CMakeFiles/rtpool_analysis.dir/partitioned_rta.cpp.o"
  "CMakeFiles/rtpool_analysis.dir/partitioned_rta.cpp.o.d"
  "CMakeFiles/rtpool_analysis.dir/priority_assignment.cpp.o"
  "CMakeFiles/rtpool_analysis.dir/priority_assignment.cpp.o.d"
  "CMakeFiles/rtpool_analysis.dir/sensitivity.cpp.o"
  "CMakeFiles/rtpool_analysis.dir/sensitivity.cpp.o.d"
  "librtpool_analysis.a"
  "librtpool_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpool_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
