file(REMOVE_RECURSE
  "librtpool_analysis.a"
)
