# Empty dependencies file for rtpool_analysis.
# This may be replaced when dependencies are built.
