file(REMOVE_RECURSE
  "CMakeFiles/rtpool_model.dir/builder.cpp.o"
  "CMakeFiles/rtpool_model.dir/builder.cpp.o.d"
  "CMakeFiles/rtpool_model.dir/dag_task.cpp.o"
  "CMakeFiles/rtpool_model.dir/dag_task.cpp.o.d"
  "CMakeFiles/rtpool_model.dir/io.cpp.o"
  "CMakeFiles/rtpool_model.dir/io.cpp.o.d"
  "CMakeFiles/rtpool_model.dir/node.cpp.o"
  "CMakeFiles/rtpool_model.dir/node.cpp.o.d"
  "CMakeFiles/rtpool_model.dir/task_set.cpp.o"
  "CMakeFiles/rtpool_model.dir/task_set.cpp.o.d"
  "librtpool_model.a"
  "librtpool_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpool_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
