file(REMOVE_RECURSE
  "librtpool_model.a"
)
