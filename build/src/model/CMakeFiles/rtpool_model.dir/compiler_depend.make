# Empty compiler generated dependencies file for rtpool_model.
# This may be replaced when dependencies are built.
