
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/builder.cpp" "src/model/CMakeFiles/rtpool_model.dir/builder.cpp.o" "gcc" "src/model/CMakeFiles/rtpool_model.dir/builder.cpp.o.d"
  "/root/repo/src/model/dag_task.cpp" "src/model/CMakeFiles/rtpool_model.dir/dag_task.cpp.o" "gcc" "src/model/CMakeFiles/rtpool_model.dir/dag_task.cpp.o.d"
  "/root/repo/src/model/io.cpp" "src/model/CMakeFiles/rtpool_model.dir/io.cpp.o" "gcc" "src/model/CMakeFiles/rtpool_model.dir/io.cpp.o.d"
  "/root/repo/src/model/node.cpp" "src/model/CMakeFiles/rtpool_model.dir/node.cpp.o" "gcc" "src/model/CMakeFiles/rtpool_model.dir/node.cpp.o.d"
  "/root/repo/src/model/task_set.cpp" "src/model/CMakeFiles/rtpool_model.dir/task_set.cpp.o" "gcc" "src/model/CMakeFiles/rtpool_model.dir/task_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/rtpool_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtpool_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
