file(REMOVE_RECURSE
  "librtpool_exec.a"
)
