file(REMOVE_RECURSE
  "CMakeFiles/rtpool_exec.dir/graph_executor.cpp.o"
  "CMakeFiles/rtpool_exec.dir/graph_executor.cpp.o.d"
  "CMakeFiles/rtpool_exec.dir/parallel_for.cpp.o"
  "CMakeFiles/rtpool_exec.dir/parallel_for.cpp.o.d"
  "CMakeFiles/rtpool_exec.dir/thread_pool.cpp.o"
  "CMakeFiles/rtpool_exec.dir/thread_pool.cpp.o.d"
  "librtpool_exec.a"
  "librtpool_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpool_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
