# Empty dependencies file for rtpool_exec.
# This may be replaced when dependencies are built.
