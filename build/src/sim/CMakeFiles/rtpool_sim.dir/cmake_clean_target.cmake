file(REMOVE_RECURSE
  "librtpool_sim.a"
)
