file(REMOVE_RECURSE
  "CMakeFiles/rtpool_sim.dir/engine.cpp.o"
  "CMakeFiles/rtpool_sim.dir/engine.cpp.o.d"
  "CMakeFiles/rtpool_sim.dir/gantt.cpp.o"
  "CMakeFiles/rtpool_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/rtpool_sim.dir/trace_json.cpp.o"
  "CMakeFiles/rtpool_sim.dir/trace_json.cpp.o.d"
  "librtpool_sim.a"
  "librtpool_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpool_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
