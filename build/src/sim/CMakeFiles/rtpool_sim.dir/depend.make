# Empty dependencies file for rtpool_sim.
# This may be replaced when dependencies are built.
