# Empty dependencies file for rtpool_graph.
# This may be replaced when dependencies are built.
