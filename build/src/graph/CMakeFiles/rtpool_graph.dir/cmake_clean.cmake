file(REMOVE_RECURSE
  "CMakeFiles/rtpool_graph.dir/algorithms.cpp.o"
  "CMakeFiles/rtpool_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/rtpool_graph.dir/dag.cpp.o"
  "CMakeFiles/rtpool_graph.dir/dag.cpp.o.d"
  "CMakeFiles/rtpool_graph.dir/dot.cpp.o"
  "CMakeFiles/rtpool_graph.dir/dot.cpp.o.d"
  "CMakeFiles/rtpool_graph.dir/reachability.cpp.o"
  "CMakeFiles/rtpool_graph.dir/reachability.cpp.o.d"
  "librtpool_graph.a"
  "librtpool_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpool_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
