file(REMOVE_RECURSE
  "librtpool_graph.a"
)
