# Empty compiler generated dependencies file for rtpool_gen.
# This may be replaced when dependencies are built.
