file(REMOVE_RECURSE
  "CMakeFiles/rtpool_gen.dir/nfj_generator.cpp.o"
  "CMakeFiles/rtpool_gen.dir/nfj_generator.cpp.o.d"
  "CMakeFiles/rtpool_gen.dir/taskset_generator.cpp.o"
  "CMakeFiles/rtpool_gen.dir/taskset_generator.cpp.o.d"
  "CMakeFiles/rtpool_gen.dir/topologies.cpp.o"
  "CMakeFiles/rtpool_gen.dir/topologies.cpp.o.d"
  "librtpool_gen.a"
  "librtpool_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpool_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
