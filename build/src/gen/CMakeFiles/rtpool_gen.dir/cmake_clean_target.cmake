file(REMOVE_RECURSE
  "librtpool_gen.a"
)
