# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_model_io[1]_include.cmake")
include("/root/repo/build/tests/test_concurrency[1]_include.cmake")
include("/root/repo/build/tests/test_antichain[1]_include.cmake")
include("/root/repo/build/tests/test_federated[1]_include.cmake")
include("/root/repo/build/tests/test_deadlock[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_global_rta[1]_include.cmake")
include("/root/repo/build/tests/test_partitioned_rta[1]_include.cmake")
include("/root/repo/build/tests/test_priority_assignment[1]_include.cmake")
include("/root/repo/build/tests/test_sensitivity[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_topologies[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_validation[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
