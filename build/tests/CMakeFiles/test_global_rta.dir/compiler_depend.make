# Empty compiler generated dependencies file for test_global_rta.
# This may be replaced when dependencies are built.
