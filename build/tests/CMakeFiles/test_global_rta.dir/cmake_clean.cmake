file(REMOVE_RECURSE
  "CMakeFiles/test_global_rta.dir/test_global_rta.cpp.o"
  "CMakeFiles/test_global_rta.dir/test_global_rta.cpp.o.d"
  "test_global_rta"
  "test_global_rta.pdb"
  "test_global_rta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_global_rta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
