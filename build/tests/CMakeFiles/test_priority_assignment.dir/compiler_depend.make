# Empty compiler generated dependencies file for test_priority_assignment.
# This may be replaced when dependencies are built.
