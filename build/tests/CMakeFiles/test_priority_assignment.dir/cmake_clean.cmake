file(REMOVE_RECURSE
  "CMakeFiles/test_priority_assignment.dir/test_priority_assignment.cpp.o"
  "CMakeFiles/test_priority_assignment.dir/test_priority_assignment.cpp.o.d"
  "test_priority_assignment"
  "test_priority_assignment.pdb"
  "test_priority_assignment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_priority_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
