# Empty compiler generated dependencies file for test_partitioned_rta.
# This may be replaced when dependencies are built.
