file(REMOVE_RECURSE
  "CMakeFiles/test_partitioned_rta.dir/test_partitioned_rta.cpp.o"
  "CMakeFiles/test_partitioned_rta.dir/test_partitioned_rta.cpp.o.d"
  "test_partitioned_rta"
  "test_partitioned_rta.pdb"
  "test_partitioned_rta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitioned_rta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
