# Empty compiler generated dependencies file for test_antichain.
# This may be replaced when dependencies are built.
