file(REMOVE_RECURSE
  "CMakeFiles/test_antichain.dir/test_antichain.cpp.o"
  "CMakeFiles/test_antichain.dir/test_antichain.cpp.o.d"
  "test_antichain"
  "test_antichain.pdb"
  "test_antichain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_antichain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
