file(REMOVE_RECURSE
  "CMakeFiles/fig2_m.dir/fig2_m.cpp.o"
  "CMakeFiles/fig2_m.dir/fig2_m.cpp.o.d"
  "fig2_m"
  "fig2_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
