# Empty dependencies file for fig2_m.
# This may be replaced when dependencies are built.
