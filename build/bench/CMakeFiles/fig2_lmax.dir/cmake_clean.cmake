file(REMOVE_RECURSE
  "CMakeFiles/fig2_lmax.dir/fig2_lmax.cpp.o"
  "CMakeFiles/fig2_lmax.dir/fig2_lmax.cpp.o.d"
  "fig2_lmax"
  "fig2_lmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_lmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
