# Empty compiler generated dependencies file for fig2_lmax.
# This may be replaced when dependencies are built.
