
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/perf_analysis.cpp" "bench/CMakeFiles/perf_analysis.dir/perf_analysis.cpp.o" "gcc" "bench/CMakeFiles/perf_analysis.dir/perf_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/rtpool_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/rtpool_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/rtpool_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtpool_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rtpool_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rtpool_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rtpool_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtpool_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
