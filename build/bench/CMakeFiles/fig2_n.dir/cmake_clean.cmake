file(REMOVE_RECURSE
  "CMakeFiles/fig2_n.dir/fig2_n.cpp.o"
  "CMakeFiles/fig2_n.dir/fig2_n.cpp.o.d"
  "fig2_n"
  "fig2_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
