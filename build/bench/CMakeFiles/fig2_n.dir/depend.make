# Empty dependencies file for fig2_n.
# This may be replaced when dependencies are built.
