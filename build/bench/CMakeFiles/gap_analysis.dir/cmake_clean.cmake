file(REMOVE_RECURSE
  "CMakeFiles/gap_analysis.dir/gap_analysis.cpp.o"
  "CMakeFiles/gap_analysis.dir/gap_analysis.cpp.o.d"
  "gap_analysis"
  "gap_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
