# Empty dependencies file for gap_analysis.
# This may be replaced when dependencies are built.
